"""Dataset registry mirroring the paper's Table 2.

The five real traces (HepPh, Gdelt, MovieLens, Epinions, Flickr) are not
redistributable, so each registry entry pairs the *paper-reported*
statistics with a :class:`~repro.graphs.generators.DynamicGraphSpec` for a
scaled-down synthetic equivalent (see DESIGN.md substitution table).  The
synthetic sizes default to laptop scale; pass ``scale > 1`` to grow them
proportionally toward the real sizes.

Per-dataset churn configurations are tuned so the unaffected-vertex ratios
across 3- and 4-snapshot windows land in the bands the paper measures in
Fig. 3(a): 27.3–45.3 % and 10.6–24.4 % respectively.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .dynamic import DynamicGraph
from .generators import ChurnConfig, DynamicGraphSpec, generate_dynamic_graph

__all__ = [
    "PaperDatasetStats",
    "TABLE2",
    "DATASET_SPECS",
    "DATASET_NAMES",
    "available_datasets",
    "paper_stats",
    "dataset_spec",
    "load_dataset",
]


@dataclass(frozen=True)
class PaperDatasetStats:
    """Statistics of a real dataset exactly as reported in Table 2."""

    name: str
    abbrev: str
    num_vertices: int
    num_edges: int
    dim: int
    num_snapshots: int
    granularity: str


#: Table 2 of the paper, verbatim.
TABLE2: dict[str, PaperDatasetStats] = {
    "HP": PaperDatasetStats("HepPh", "HP", 28_090, 1_543_901, 172, 243, "1 day"),
    "GT": PaperDatasetStats("Gdelt", "GT", 7_398, 238_765, 248, 288, "1 month"),
    "ML": PaperDatasetStats("MovieLens", "ML", 9_992, 1_000_209, 500, 100, "4 days"),
    "EP": PaperDatasetStats("Epinions", "EP", 876_252, 13_668_320, 220, 51, "10 day"),
    "FK": PaperDatasetStats("Flicker", "FK", 2_302_925, 33_140_017, 162, 134, "1.5 days"),
}

DATASET_NAMES: tuple[str, ...] = tuple(TABLE2)

#: Synthetic stand-in recipes at default (laptop) scale.  Churn parameters
#: differ per dataset to reproduce the Fig. 3(a) spread of overlap ratios:
#: citation graphs (HP) churn least, social-media graphs (FK) churn most.
DATASET_SPECS: dict[str, DynamicGraphSpec] = {
    "HP": DynamicGraphSpec(
        name="HP",
        num_vertices=1500,
        num_edges=20_000,
        dim=24,
        num_snapshots=12,
        churn=ChurnConfig(
            active_frac=0.105,
            edge_change_frac=0.063,
            feature_change_frac=0.55,
            hub_avoidance=3.0,
        ),
        seed=11,
    ),
    "GT": DynamicGraphSpec(
        name="GT",
        num_vertices=1000,
        num_edges=8_000,
        dim=32,
        num_snapshots=12,
        churn=ChurnConfig(
            active_frac=0.155,
            edge_change_frac=0.088,
            feature_change_frac=0.6,
            hub_avoidance=3.0,
        ),
        seed=23,
    ),
    "ML": DynamicGraphSpec(
        name="ML",
        num_vertices=1200,
        num_edges=25_000,
        dim=48,
        num_snapshots=12,
        churn=ChurnConfig(
            active_frac=0.09,
            edge_change_frac=0.0525,
            feature_change_frac=0.6,
            hub_avoidance=3.2,
        ),
        seed=37,
    ),
    "EP": DynamicGraphSpec(
        name="EP",
        num_vertices=3000,
        num_edges=30_000,
        dim=28,
        num_snapshots=10,
        churn=ChurnConfig(
            active_frac=0.153,
            edge_change_frac=0.085,
            feature_change_frac=0.65,
            hub_avoidance=2.8,
        ),
        seed=53,
    ),
    "FK": DynamicGraphSpec(
        name="FK",
        num_vertices=4000,
        num_edges=40_000,
        dim=20,
        num_snapshots=10,
        churn=ChurnConfig(
            active_frac=0.165,
            edge_change_frac=0.09,
            feature_change_frac=0.7,
            hub_avoidance=2.6,
        ),
        seed=71,
    ),
}


def available_datasets() -> tuple[str, ...]:
    """Abbreviations of every registered dataset, in Table 2 order."""
    return DATASET_NAMES


def paper_stats(name: str) -> PaperDatasetStats:
    """The paper-reported statistics for a dataset abbreviation."""
    try:
        return TABLE2[name]
    except KeyError:
        raise KeyError(f"unknown dataset {name!r}; choose from {DATASET_NAMES}") from None


def dataset_spec(
    name: str,
    *,
    scale: float = 1.0,
    num_snapshots: int | None = None,
    dim: int | None = None,
    seed: int | None = None,
) -> DynamicGraphSpec:
    """Resolve the synthetic spec for a dataset, optionally rescaled.

    ``scale`` multiplies vertex and edge counts (features and snapshot
    counts are controlled separately since they dominate runtime).
    """
    if name not in DATASET_SPECS:
        raise KeyError(f"unknown dataset {name!r}; choose from {DATASET_NAMES}")
    spec = DATASET_SPECS[name]
    changes: dict = {}
    if scale != 1.0:
        if scale <= 0:
            raise ValueError("scale must be positive")
        changes["num_vertices"] = max(16, int(round(spec.num_vertices * scale)))
        changes["num_edges"] = max(32, int(round(spec.num_edges * scale)))
    if num_snapshots is not None:
        if num_snapshots < 1:
            raise ValueError("num_snapshots must be >= 1")
        changes["num_snapshots"] = num_snapshots
    if dim is not None:
        if dim < 1:
            raise ValueError("dim must be >= 1")
        changes["dim"] = dim
    if seed is not None:
        changes["seed"] = seed
    return replace(spec, **changes) if changes else spec


def load_dataset(
    name: str,
    *,
    scale: float = 1.0,
    num_snapshots: int | None = None,
    dim: int | None = None,
    seed: int | None = None,
) -> DynamicGraph:
    """Generate the synthetic stand-in for a Table 2 dataset.

    Deterministic for a fixed ``(name, scale, num_snapshots, dim, seed)``.
    """
    return generate_dynamic_graph(
        dataset_spec(name, scale=scale, num_snapshots=num_snapshots, dim=dim, seed=seed)
    )
