"""Experiment harness and reporting for the per-figure benches."""

from .harness import (
    GRID_DATASETS,
    GRID_MODELS,
    HIDDEN_DIM,
    NUM_SNAPSHOTS,
    WINDOW,
    geomean,
    get_concurrent,
    get_graph,
    get_labels,
    get_model,
    get_platform_report,
    get_reference,
    get_tagnn_report,
    get_workload,
)
from .charts import bar_chart, grouped_bar_chart, series_chart
from .report import RESULTS_DIR, render_table, save_result

__all__ = [
    "GRID_DATASETS",
    "GRID_MODELS",
    "HIDDEN_DIM",
    "NUM_SNAPSHOTS",
    "WINDOW",
    "geomean",
    "get_concurrent",
    "get_graph",
    "get_labels",
    "get_model",
    "get_platform_report",
    "get_reference",
    "get_tagnn_report",
    "get_workload",
    "bar_chart",
    "grouped_bar_chart",
    "series_chart",
    "RESULTS_DIR",
    "render_table",
    "save_result",
]
