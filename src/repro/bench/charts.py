"""ASCII charts: render bench series as horizontal bar charts.

The paper's results are *figures*; the benches archive them as tables
plus these bar renderings so the shape (who wins, by how much, where the
knee is) is visible at a glance in a terminal or a text artefact.

All renderers are pure string functions (no plotting dependencies) and
handle the awkward cases: zero/negative values, log-scale spans, labels
of uneven width.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["bar_chart", "grouped_bar_chart", "series_chart"]

_BLOCK = "█"
_PARTIALS = ["", "▏", "▎", "▍", "▌", "▋", "▊", "▉"]


def _bar(value: float, vmax: float, width: int) -> str:
    if vmax <= 0 or value <= 0:
        return ""
    frac = min(1.0, value / vmax)
    cells = frac * width
    full = int(cells)
    rem = int((cells - full) * 8)
    return _BLOCK * full + (_PARTIALS[rem] if rem else "")


def bar_chart(
    title: str,
    labels: Sequence[str],
    values: Sequence[float],
    *,
    width: int = 40,
    log: bool = False,
    unit: str = "",
) -> str:
    """One horizontal bar per (label, value).

    ``log=True`` renders bar lengths on a log10 scale (for series spanning
    orders of magnitude, e.g. speedups over DGL-CPU) while still printing
    the raw values.
    """
    if len(labels) != len(values):
        raise ValueError("labels/values length mismatch")
    if not labels:
        return f"{title}\n(empty)\n"
    vals = [max(0.0, float(v)) for v in values]
    if log:
        scaled = [math.log10(v + 1.0) for v in vals]
    else:
        scaled = vals
    vmax = max(scaled) or 1.0
    lw = max(len(str(l)) for l in labels)
    lines = [title, "=" * len(title)]
    for label, raw, s in zip(labels, vals, scaled):
        bar = _bar(s, vmax, width)
        lines.append(f"{str(label):>{lw}} | {bar} {raw:g}{unit}")
    return "\n".join(lines) + "\n"


def grouped_bar_chart(
    title: str,
    groups: Sequence[str],
    series: dict[str, Sequence[float]],
    *,
    width: int = 30,
    log: bool = False,
) -> str:
    """Grouped bars: for each group, one bar per named series — the shape
    of the paper's Figs. 9–11 (platforms per dataset)."""
    for name, vals in series.items():
        if len(vals) != len(groups):
            raise ValueError(f"series {name!r} length != number of groups")
    if not groups or not series:
        return f"{title}\n(empty)\n"
    all_vals = [max(0.0, float(v)) for vals in series.values() for v in vals]
    scale = (lambda v: math.log10(v + 1.0)) if log else (lambda v: v)
    vmax = max((scale(v) for v in all_vals), default=1.0) or 1.0
    sw = max(len(s) for s in series)
    lines = [title, "=" * len(title)]
    for gi, group in enumerate(groups):
        lines.append(f"{group}:")
        for name, vals in series.items():
            raw = max(0.0, float(vals[gi]))
            lines.append(
                f"  {name:>{sw}} | {_bar(scale(raw), vmax, width)} {raw:g}"
            )
    return "\n".join(lines) + "\n"


def series_chart(
    title: str,
    x: Sequence,
    y: Sequence[float],
    *,
    width: int = 40,
    ylabel: str = "",
) -> str:
    """A one-series trend (the paper's sensitivity sweeps): one bar per x
    point, so knees and plateaus are visible."""
    return bar_chart(
        title if not ylabel else f"{title}  [{ylabel}]",
        [str(v) for v in x],
        y,
        width=width,
    )
