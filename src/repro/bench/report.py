"""Plain-text rendering of reproduced tables/figures.

Every bench prints its reproduced table/series through these helpers and
also archives it under ``benchmarks/results/`` so EXPERIMENTS.md can
quote the exact artefacts.
"""

from __future__ import annotations

import os
from typing import Iterable, Sequence

__all__ = ["render_table", "save_result", "RESULTS_DIR"]

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "..", "benchmarks", "results")


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence],
    *,
    floatfmt: str = "{:.2f}",
) -> str:
    """Fixed-width text table with a title rule."""

    def fmt(cell) -> str:
        if isinstance(cell, float):
            return floatfmt.format(cell)
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    sep = "-+-".join("-" * w for w in widths)
    lines = [title, "=" * len(title)]
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines) + "\n"


def save_result(name: str, text: str) -> str:
    """Print a rendered artefact and archive it under benchmarks/results."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as f:
        f.write(text)
    print("\n" + text)
    return path
