"""Shared experiment harness for the per-figure/per-table benches.

All benches run over the same grid — the paper's 3 models x 5 datasets —
and need the same intermediate artefacts (reference run, workload stats,
TaGNN-S run, platform reports).  This module memoises them per process so
the whole bench suite costs one pass over the grid.

Experiment scale: benches use 8 snapshots and hidden width 32 (the
synthetic stand-ins are laptop-scale; see DESIGN.md).  Every number is
deterministic for a fixed seed.
"""

from __future__ import annotations

import math
from functools import lru_cache

from ..accel import (
    ACCELERATOR_BASELINES,
    PIPAD,
    TAGNN_S,
    DGL_CPU,
    TaGNNConfig,
    TaGNNSimulator,
    WorkloadStats,
)
from ..accel.report import SimulationReport
from ..engine import ConcurrentEngine, EngineResult, ReferenceEngine
from ..graphs import load_dataset
from ..graphs.dynamic import DynamicGraph
from ..models import make_model, make_teacher_labels
from ..models.base import DGNNModel

__all__ = [
    "GRID_MODELS",
    "GRID_DATASETS",
    "NUM_SNAPSHOTS",
    "HIDDEN_DIM",
    "WINDOW",
    "get_graph",
    "get_model",
    "get_labels",
    "get_reference",
    "get_concurrent",
    "get_workload",
    "get_tagnn_report",
    "get_platform_report",
    "geomean",
]

GRID_MODELS = ("CD-GCN", "GC-LSTM", "T-GCN")
GRID_DATASETS = ("HP", "GT", "ML", "EP", "FK")
NUM_SNAPSHOTS = 8
HIDDEN_DIM = 32
WINDOW = 4
_SEED = 3


@lru_cache(maxsize=None)
def get_graph(dataset: str) -> DynamicGraph:
    return load_dataset(dataset, num_snapshots=NUM_SNAPSHOTS)


@lru_cache(maxsize=None)
def get_model(model_name: str, dataset: str) -> DGNNModel:
    return make_model(model_name, get_graph(dataset).dim, HIDDEN_DIM, seed=_SEED)


@lru_cache(maxsize=None)
def get_labels(dataset: str, num_classes: int = 4):
    return make_teacher_labels(get_graph(dataset), num_classes)


@lru_cache(maxsize=None)
def get_reference(model_name: str, dataset: str) -> EngineResult:
    return ReferenceEngine(
        get_model(model_name, dataset), window_size=WINDOW
    ).run(get_graph(dataset))


@lru_cache(maxsize=None)
def get_concurrent(
    model_name: str,
    dataset: str,
    *,
    enable_overlap: bool = True,
    enable_skipping: bool = True,
    window: int = WINDOW,
) -> EngineResult:
    return ConcurrentEngine(
        get_model(model_name, dataset),
        window_size=window,
        enable_overlap=enable_overlap,
        enable_skipping=enable_skipping,
    ).run(get_graph(dataset))


@lru_cache(maxsize=None)
def get_workload(model_name: str, dataset: str, window: int = WINDOW) -> WorkloadStats:
    return WorkloadStats.analyze(
        get_graph(dataset), get_model(model_name, dataset), window
    )


@lru_cache(maxsize=None)
def get_tagnn_report(
    model_name: str, dataset: str, config: TaGNNConfig | None = None
) -> SimulationReport:
    cfg = config or TaGNNConfig()
    return TaGNNSimulator(cfg).simulate(
        get_model(model_name, dataset),
        get_graph(dataset),
        dataset,
        workload=get_workload(model_name, dataset, cfg.window_size),
    )


_PLATFORMS = {
    **ACCELERATOR_BASELINES,
    "DGL-CPU": DGL_CPU,
    "PiPAD": PIPAD,
}


@lru_cache(maxsize=None)
def get_platform_report(
    platform: str, model_name: str, dataset: str
) -> SimulationReport:
    """Report for any named platform (baselines, software, TaGNN-S, TaGNN)."""
    if platform == "TaGNN":
        return get_tagnn_report(model_name, dataset)
    model = get_model(model_name, dataset)
    graph = get_graph(dataset)
    wl = get_workload(model_name, dataset)
    if platform == "TaGNN-S":
        return TAGNN_S.simulate(
            model, graph, dataset,
            engine_result=get_concurrent(model_name, dataset), workload=wl,
        )
    ref = get_reference(model_name, dataset)
    return _PLATFORMS[platform].simulate(
        model, graph, dataset, metrics=ref.metrics, workload=wl
    )


def geomean(values) -> float:
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))
