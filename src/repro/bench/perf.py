"""``repro perf`` — the repeatable hot-path performance suite.

Measures the three costs the vectorisation work targets and archives
them in a schema-versioned ``BENCH_<timestamp>.json`` at the repo root
so regressions show up as a diffable artefact:

* **event application** — events/s of the batched
  :func:`~repro.graphs.updates.apply_events` fast path against the
  retained per-event reference replay, per generator dataset (the
  headline cell is a 10k-vertex graph where the batch kernel must hold
  a >=5x advantage);
* **streaming window latency** — wall-clock p50/p95 of one
  :class:`~repro.engine.streaming.StreamingInference` window across the
  model zoo;
* **adaptive planning** (opt-in, ``--adaptive``) — the same streaming
  cells run twice: once static (PR-6 configuration) and once under a
  shared :class:`~repro.adaptive.AdaptivePlanner` whose cost model is
  calibrated on this machine and refined across repeats, with the plan
  decisions (kernel histogram, tuned thresholds, probed drift) archived
  next to the latencies;
* **peak RSS** — high-water memory of the whole run.

Methodology (see docs/performance.md): container wall-clocks are noisy,
so throughput cells take the *best* of ``repeats`` timed passes (the
least-perturbed run bounds the machine's true speed) and latency
percentiles pool every window across all passes.  All workloads are
seeded generator datasets — numbers are comparable across runs on the
same machine, not across machines.

Wall-clock use is deliberate and confined to this module: ``bench/`` is
outside the R001 determinism paths — simulator results stay
clock-free; only the *measurement* of the software kernels needs real
time.
"""

from __future__ import annotations

import json
import resource
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..graphs import load_dataset
from ..graphs.updates import apply_events, apply_events_reference, event_stream
from ..models import make_model
from .report import render_table

__all__ = [
    "EVENT_CELLS",
    "EVENT_CELLS_SMOKE",
    "PerfConfig",
    "SCHEMA",
    "STREAM_CELLS",
    "STREAM_CELLS_SMOKE",
    "bench_event_application",
    "bench_streaming",
    "bench_streaming_adaptive",
    "render_delta_table",
    "render_perf_tables",
    "run_perf",
    "write_result",
]

SCHEMA = "repro-perf/2"

#: (dataset, scale, snapshots) cells for the event-application bench.
#: FK at scale 2.5 is the 10k-vertex headline graph of the acceptance
#: criterion.
EVENT_CELLS = (
    ("GT", 1.0, 4),
    ("FK", 1.0, 4),
    ("FK", 2.5, 4),
)
#: Smoke cells keep the full-suite (dataset, scale) keys so the CI delta
#: table overlaps the committed baseline; fewer snapshots keep them fast.
EVENT_CELLS_SMOKE = (("GT", 1.0, 3),)

#: (model, dataset, scale, snapshots) cells for the streaming bench.
STREAM_CELLS = (
    ("CD-GCN", "GT", 1.0, 16),
    ("GC-LSTM", "GT", 1.0, 16),
    ("T-GCN", "GT", 1.0, 16),
    ("T-GCN", "FK", 1.0, 16),
)
STREAM_CELLS_SMOKE = (("T-GCN", "GT", 1.0, 8),)

_SEED = 3
_HIDDEN = 32
_WINDOW = 4


@dataclass(frozen=True)
class PerfConfig:
    """Suite shape: full (default) or the CI smoke subset."""

    smoke: bool = False
    repeats: int = 7
    seed: int = _SEED
    #: also run the static-vs-adaptive streaming comparison (slower: each
    #: streaming cell executes twice plus one calibration pass)
    adaptive: bool = False

    def __post_init__(self) -> None:
        if self.repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {self.repeats}")
        if self.seed < 0:
            raise ValueError(f"seed must be >= 0, got {self.seed}")

    @property
    def event_cells(self):
        return EVENT_CELLS_SMOKE if self.smoke else EVENT_CELLS

    @property
    def stream_cells(self):
        return STREAM_CELLS_SMOKE if self.smoke else STREAM_CELLS

    @property
    def effective_repeats(self) -> int:
        return min(self.repeats, 3) if self.smoke else self.repeats


# ----------------------------------------------------------------------
# measurement primitives
# ----------------------------------------------------------------------
def _best_seconds(fn, repeats: int) -> float:
    """Wall-clock of the fastest of ``repeats`` calls to ``fn``."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _percentile(samples: list[float], q: float) -> float:
    return float(np.percentile(np.asarray(samples, dtype=np.float64), q))


# ----------------------------------------------------------------------
# event-application throughput
# ----------------------------------------------------------------------
def bench_event_application(
    dataset: str, scale: float, snapshots: int, *, repeats: int, seed: int
) -> dict:
    """Batched vs per-event replay over every consecutive snapshot pair."""
    graph = load_dataset(
        dataset, scale=scale, num_snapshots=snapshots, seed=seed
    )
    streams = event_stream(graph)
    pairs = [(graph[t], streams[t]) for t in range(len(streams))]
    num_events = sum(len(ev) for _, ev in pairs)

    def run_batched():
        for snap, events in pairs:
            apply_events(snap, events)

    def run_reference():
        for snap, events in pairs:
            apply_events_reference(snap, events)

    # one warm pass apiece keeps allocator/caching effects out of rep 1
    run_batched()
    run_reference()
    t_batched = _best_seconds(run_batched, repeats)
    t_reference = _best_seconds(run_reference, repeats)
    return {
        "dataset": dataset,
        "scale": scale,
        "num_vertices": int(graph.num_vertices),
        "num_edges_snapshot0": int(graph[0].num_edges),
        "num_events": int(num_events),
        "batched_seconds": t_batched,
        "reference_seconds": t_reference,
        "batched_events_per_s": num_events / t_batched if t_batched else 0.0,
        "reference_events_per_s": (
            num_events / t_reference if t_reference else 0.0
        ),
        "speedup": t_reference / t_batched if t_batched else 0.0,
    }


# ----------------------------------------------------------------------
# streaming window latency
# ----------------------------------------------------------------------
def _timed_stream(model, graph, planner=None) -> list[float]:
    """Window latencies of one full pass of ``graph`` through a fresh
    :class:`StreamingInference` (optionally planner-driven)."""
    from ..engine.streaming import StreamingInference

    stream = StreamingInference(model, window_size=_WINDOW, planner=planner)
    latencies: list[float] = []
    for snap in graph:
        t0 = time.perf_counter()
        result = stream.push(snap)
        dt = time.perf_counter() - t0
        if result is not None:  # this push completed a window
            latencies.append(dt)
    t0 = time.perf_counter()
    if stream.flush() is not None:
        latencies.append(time.perf_counter() - t0)
    return latencies


def bench_streaming(
    model_name: str,
    dataset: str,
    scale: float,
    snapshots: int,
    *,
    repeats: int,
    seed: int,
) -> dict:
    """p50/p95 wall-clock of one streaming window, pooled over repeats."""
    graph = load_dataset(
        dataset, scale=scale, num_snapshots=snapshots, seed=seed
    )
    model = make_model(model_name, graph.dim, _HIDDEN, seed=seed)
    latencies: list[float] = []
    for _ in range(repeats):
        latencies.extend(_timed_stream(model, graph))
    return {
        "model": model_name,
        "dataset": dataset,
        "scale": scale,
        "num_vertices": int(graph.num_vertices),
        "window_size": _WINDOW,
        "windows_timed": len(latencies),
        "p50_ms": _percentile(latencies, 50) * 1e3,
        "p95_ms": _percentile(latencies, 95) * 1e3,
        "best_ms": min(latencies) * 1e3,
    }


# ----------------------------------------------------------------------
# adaptive vs static streaming
# ----------------------------------------------------------------------
def bench_streaming_adaptive(
    model_name: str,
    dataset: str,
    scale: float,
    snapshots: int,
    *,
    repeats: int,
    seed: int,
    table=None,
) -> dict:
    """Same-run static-vs-adaptive comparison of one streaming cell.

    The static side is the PR-6 configuration (delta-condensed kernel,
    default thresholds); the adaptive side shares one
    :class:`AdaptivePlanner` across all repeats so its EWMA cost model
    and threshold controller converge the way a long-lived stream
    would.  ``table`` is an optional pre-computed
    :class:`CalibrationTable` (the suite calibrates once and reuses it
    for every cell).
    """
    from ..adaptive import AdaptivePlanner, CostModel

    graph = load_dataset(
        dataset, scale=scale, num_snapshots=snapshots, seed=seed
    )
    model = make_model(model_name, graph.dim, _HIDDEN, seed=seed)

    static: list[float] = []
    for _ in range(repeats):
        static.extend(_timed_stream(model, graph))

    planner = AdaptivePlanner(cost_model=CostModel(table))
    adaptive: list[float] = []
    rep_p50_ms: list[float] = []
    for _ in range(repeats):
        lats = _timed_stream(model, graph, planner=planner)
        adaptive.extend(lats)
        rep_p50_ms.append(_percentile(lats, 50) * 1e3)

    kernels: dict[str, int] = {}
    storages: dict[str, int] = {}
    for rec in planner.records:
        kernels[rec.plan.kernel.value] = kernels.get(rec.plan.kernel.value, 0) + 1
        storages[rec.plan.storage.value] = (
            storages.get(rec.plan.storage.value, 0) + 1
        )
    thr = planner.thresholds()
    static_p50 = _percentile(static, 50)
    adaptive_p50 = _percentile(adaptive, 50)
    return {
        "model": model_name,
        "dataset": dataset,
        "scale": scale,
        "num_vertices": int(graph.num_vertices),
        "window_size": _WINDOW,
        "windows_timed": len(adaptive),
        "static_p50_ms": static_p50 * 1e3,
        "static_p95_ms": _percentile(static, 95) * 1e3,
        "adaptive_p50_ms": adaptive_p50 * 1e3,
        "adaptive_p95_ms": _percentile(adaptive, 95) * 1e3,
        #: per-repeat trajectory — shows the convergence, not just the pool
        "adaptive_rep_p50_ms": rep_p50_ms,
        "speedup_p50": static_p50 / adaptive_p50 if adaptive_p50 else 0.0,
        "plan": {
            "kernels": kernels,
            "storages": storages,
            "partition": planner.records[-1].plan.partition_strategy
            if planner.records
            else None,
            "thresholds": {"theta_s": thr.theta_s, "theta_e": thr.theta_e},
            "aggressiveness": planner.aggressiveness,
            "kernel_switches": planner.kernel_switches,
            "probes": planner.probes_done,
            "max_drift": planner.max_observed_drift,
            "drift_budget": planner.config.drift_budget,
            "cost_model": planner.cost_model.snapshot(),
        },
    }


# ----------------------------------------------------------------------
# the suite
# ----------------------------------------------------------------------
def run_perf(config: PerfConfig | None = None) -> dict:
    """Run the full (or smoke) suite and return the result document."""
    config = config if config is not None else PerfConfig()
    reps = config.effective_repeats
    events = [
        bench_event_application(
            ds, scale, snaps, repeats=reps, seed=config.seed
        )
        for ds, scale, snaps in config.event_cells
    ]
    streaming = [
        bench_streaming(
            model, ds, scale, snaps, repeats=reps, seed=config.seed
        )
        for model, ds, scale, snaps in config.stream_cells
    ]
    result = {
        "schema": SCHEMA,
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "config": {
            "smoke": config.smoke,
            "repeats": reps,
            "seed": config.seed,
            "hidden_dim": _HIDDEN,
            "window_size": _WINDOW,
            "adaptive": config.adaptive,
        },
        "event_application": events,
        "streaming": streaming,
    }
    if config.adaptive:
        from dataclasses import asdict

        from ..adaptive import calibrate_cost_model

        table = calibrate_cost_model(seed=config.seed)
        result["adaptive"] = {
            "calibration": asdict(table),
            "cells": [
                bench_streaming_adaptive(
                    model,
                    ds,
                    scale,
                    snaps,
                    repeats=reps,
                    seed=config.seed,
                    table=table,
                )
                for model, ds, scale, snaps in config.stream_cells
            ],
        }
    result["peak_rss_kb"] = int(
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    )
    return result


def write_result(result: dict, out_dir: Path | str = ".") -> Path:
    """Archive ``result`` as ``BENCH_<timestamp>.json`` under ``out_dir``."""
    stamp = result["created_utc"].replace("-", "").replace(":", "")
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    path = out / f"BENCH_{stamp}.json"
    path.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    return path


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def render_perf_tables(result: dict) -> str:
    """Human-readable tables for one result document."""
    ev_rows = [
        [
            f"{e['dataset']} x{e['scale']:g}",
            f"{e['num_vertices']:,}",
            f"{e['num_events']:,}",
            f"{e['reference_events_per_s']:,.0f}",
            f"{e['batched_events_per_s']:,.0f}",
            f"{e['speedup']:.1f}x",
        ]
        for e in result["event_application"]
    ]
    st_rows = [
        [
            s["model"],
            f"{s['dataset']} x{s['scale']:g}",
            s["windows_timed"],
            f"{s['p50_ms']:.2f}",
            f"{s['p95_ms']:.2f}",
        ]
        for s in result["streaming"]
    ]
    parts = [
        render_table(
            "Event application (best-of-N)",
            ["cell", "#V", "#events", "ref ev/s", "batched ev/s", "speedup"],
            ev_rows,
        ),
        render_table(
            "Streaming window latency",
            ["model", "cell", "windows", "p50 (ms)", "p95 (ms)"],
            st_rows,
        ),
    ]
    if "adaptive" in result:
        ad_rows = []
        for a in result["adaptive"]["cells"]:
            plan = a["plan"]
            kernel = (
                max(plan["kernels"], key=plan["kernels"].get)
                if plan["kernels"]
                else "?"
            )
            ad_rows.append(
                [
                    a["model"],
                    f"{a['dataset']} x{a['scale']:g}",
                    f"{a['static_p50_ms']:.2f}",
                    f"{a['adaptive_p50_ms']:.2f}",
                    f"{a['speedup_p50']:.2f}x",
                    kernel,
                    f"({plan['thresholds']['theta_s']:+.2f},"
                    f"{plan['thresholds']['theta_e']:+.2f})",
                    f"{plan['max_drift']:.4f}",
                ]
            )
        parts.append(
            render_table(
                "Adaptive planning (static vs planner-driven streaming)",
                [
                    "model",
                    "cell",
                    "static p50",
                    "adaptive p50",
                    "speedup",
                    "top kernel",
                    "theta",
                    "drift",
                ],
                ad_rows,
            )
        )
    parts.append(
        f"peak RSS: {result['peak_rss_kb'] / 1024:.1f} MiB"
        f"  (schema {result['schema']}, created {result['created_utc']})\n"
    )
    return "\n".join(parts)


def render_delta_table(current: dict, baseline: dict) -> str:
    """Report-only comparison of two result documents (keyed by cell)."""

    def ev_key(e):
        return (e["dataset"], e["scale"])

    def st_key(s):
        return (s["model"], s["dataset"], s["scale"])

    base_ev = {ev_key(e): e for e in baseline.get("event_application", [])}
    base_st = {st_key(s): s for s in baseline.get("streaming", [])}
    rows = []
    for e in current["event_application"]:
        b = base_ev.get(ev_key(e))
        if b is None:
            continue
        cur, old = e["batched_events_per_s"], b["batched_events_per_s"]
        rows.append(
            [
                f"events {e['dataset']} x{e['scale']:g}",
                f"{old:,.0f}",
                f"{cur:,.0f}",
                f"{100.0 * (cur - old) / old:+.1f}%" if old else "n/a",
            ]
        )
    for s in current["streaming"]:
        b = base_st.get(st_key(s))
        if b is None:
            continue
        cur, old = s["p50_ms"], b["p50_ms"]
        rows.append(
            [
                f"stream {s['model']}/{s['dataset']} p50",
                f"{old:.2f}ms",
                f"{cur:.2f}ms",
                f"{100.0 * (cur - old) / old:+.1f}%" if old else "n/a",
            ]
        )
    # adaptive cells compare against the *baseline's static* streaming
    # rows: the planner's promise is to match-or-beat the PR-6 pipeline.
    for a in current.get("adaptive", {}).get("cells", []):
        b = base_st.get(st_key(a))
        if b is None:
            continue
        cur, old = a["adaptive_p50_ms"], b["p50_ms"]
        rows.append(
            [
                f"adaptive {a['model']}/{a['dataset']} p50",
                f"{old:.2f}ms",
                f"{cur:.2f}ms",
                f"{100.0 * (cur - old) / old:+.1f}%" if old else "n/a",
            ]
        )
    if not rows:
        return "no overlapping cells between current run and baseline\n"
    return render_table(
        "Delta vs baseline (report-only; wall-clock is machine-dependent)",
        ["cell", "baseline", "current", "delta"],
        rows,
    )
