"""Resilience for the streaming serving path: faults, guarded ingest,
checkpoint/replay, supervision (see docs/resilience.md)."""

from .checkpoint import (
    CHECKPOINT_FORMAT,
    arrays_to_carry,
    carry_to_arrays,
    load_checkpoint,
    restore_stream,
    save_checkpoint,
)
from .faults import (
    ENGINE_FAULTS,
    EVENT_FAULTS,
    SNAPSHOT_FAULTS,
    STORAGE_FAULTS,
    FaultKind,
    FaultPlan,
    FaultSpec,
    FlakyHBM,
    TransientStorageError,
)
from .ingest import (
    DeadLetter,
    DeadLetterQueue,
    GuardedIngest,
    RetryExhaustedError,
    RetryPolicy,
    snapshot_violation,
    with_retry,
)
from .supervisor import (
    ChaosReport,
    CircuitOpenError,
    Incident,
    ResilientStreamingInference,
    run_chaos_campaign,
)

__all__ = [
    "CHECKPOINT_FORMAT",
    "ChaosReport",
    "CircuitOpenError",
    "DeadLetter",
    "DeadLetterQueue",
    "ENGINE_FAULTS",
    "EVENT_FAULTS",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "FlakyHBM",
    "GuardedIngest",
    "Incident",
    "ResilientStreamingInference",
    "RetryExhaustedError",
    "RetryPolicy",
    "SNAPSHOT_FAULTS",
    "STORAGE_FAULTS",
    "TransientStorageError",
    "arrays_to_carry",
    "carry_to_arrays",
    "load_checkpoint",
    "restore_stream",
    "run_chaos_campaign",
    "save_checkpoint",
    "snapshot_violation",
    "with_retry",
]
