"""Supervision and graceful degradation for streaming inference.

:class:`ResilientStreamingInference` wraps
:class:`~repro.engine.streaming.StreamingInference` with the recovery
protocol a production serving path needs:

1. **Admission control** — every pushed snapshot is validated
   (:func:`~repro.resilience.ingest.snapshot_violation`); poison
   snapshots are dead-lettered, never entering the engine.
2. **Checkpoint before risk** — immediately before a push/flush that
   will process a window, the carry state is captured in memory, so a
   mid-window fault can roll the stream back to the exact boundary.
3. **Graceful degradation** — engine faults and
   :class:`~repro.check.sanitizer.SanitizerViolation`\\ s are caught, the
   carry is restored, and the failed window is re-executed with the
   exact :class:`~repro.engine.reference.ReferenceEngine` semantics
   (correct but slower: no batching, no skipping, conventional
   accounting).  The degraded results are spliced back into the stream
   via ``adopt_window`` so subsequent windows continue seamlessly.
4. **Circuit breaker** — after ``failure_threshold`` consecutive
   incidents the breaker opens and further pushes raise
   :class:`CircuitOpenError` instead of silently degrading forever.

Every absorbed anomaly is recorded twice: as a structured
:class:`Incident` for operators, and in the ``incidents`` / ``retries`` /
``fallback_windows`` / ``dead_letter_events`` / ``checkpoints_taken`` /
``restores`` counters of :class:`~repro.engine.metrics.ExecutionMetrics`
so resilience shows up in the same report as performance.

:func:`run_chaos_campaign` drives a whole
:class:`~repro.graphs.dynamic.DynamicGraph` through this machinery while
a :class:`~repro.resilience.faults.FaultPlan` injects every fault it
carries, and returns a :class:`ChaosReport` reconciling observed
incidents against the plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..check.sanitizer import SanitizerViolation
from ..engine.metrics import ExecutionMetrics
from ..engine.reference import ReferenceEngine
from ..engine.streaming import StreamingInference, StreamResult
from ..graphs.dynamic import DynamicGraph
from ..graphs.snapshot import CSRSnapshot
from ..graphs.updates import event_stream
from ..models.base import DGNNModel
from ..skipping.policy import SkipThresholds
from .faults import FaultPlan, FlakyHBM
from .ingest import (
    DeadLetterQueue,
    GuardedIngest,
    RetryPolicy,
    snapshot_violation,
    with_retry,
)

__all__ = [
    "ChaosReport",
    "CircuitOpenError",
    "Incident",
    "ResilientStreamingInference",
    "run_chaos_campaign",
]


class CircuitOpenError(RuntimeError):
    """The stream refused work because its circuit breaker is open."""


@dataclass(frozen=True)
class Incident:
    """One absorbed anomaly, in operator-actionable form.

    ``shard`` and ``tenant`` localise cluster-level incidents raised by
    :mod:`repro.serving`; single-stream incidents leave them at the
    ``-1`` / ``""`` sentinels.
    """

    window_index: int
    step: int
    kind: str  # "sanitizer-violation" | "engine-fault" | "poison-snapshot"
    action: str  # "degraded" | "dead-lettered" | "restarted" | "shed" | ...
    detail: str = ""
    component: str = ""
    shard: int = -1
    tenant: str = ""

    def __post_init__(self) -> None:
        if self.window_index < 0:
            raise ValueError(
                f"window_index must be >= 0, got {self.window_index}"
            )
        if self.step < 0:
            raise ValueError(f"step must be >= 0, got {self.step}")
        if self.shard < -1:
            raise ValueError(f"shard must be >= -1, got {self.shard}")


class ResilientStreamingInference:
    """Fault-tolerant facade over :class:`StreamingInference`.

    Parameters
    ----------
    model, window_size, thresholds, enable_skipping:
        Forwarded to the wrapped :class:`StreamingInference`.
    failure_threshold:
        Consecutive incidents before the circuit breaker opens
        (``0`` disables the breaker).
    dlq:
        Optional shared :class:`DeadLetterQueue` (e.g. the same queue a
        :class:`~repro.resilience.ingest.GuardedIngest` writes to).
    """

    def __init__(
        self,
        model: DGNNModel,
        *,
        window_size: int = 4,
        thresholds: SkipThresholds | None = None,
        enable_skipping: bool = True,
        failure_threshold: int = 5,
        dlq: DeadLetterQueue | None = None,
    ):
        if failure_threshold < 0:
            raise ValueError(
                f"failure_threshold must be >= 0, got {failure_threshold}"
            )
        self.model = model
        self.stream = StreamingInference(
            model,
            window_size=window_size,
            thresholds=thresholds,
            enable_skipping=enable_skipping,
        )
        self.failure_threshold = failure_threshold
        self.dlq = dlq if dlq is not None else DeadLetterQueue()
        self.incidents: list[Incident] = []
        self._own = ExecutionMetrics()
        self._queued_faults: list[Exception] = []
        self._consecutive_failures = 0
        self._open = False

    # ------------------------------------------------------------------
    @property
    def metrics(self) -> ExecutionMetrics:
        """Engine counters plus the supervisor's resilience counters."""
        return self.stream.metrics.merge(self._own)

    @property
    def circuit_open(self) -> bool:
        return self._open

    def reset_circuit(self) -> None:
        """Close the breaker and forget the failure streak (operator
        action after fixing the feed)."""
        self._open = False
        self._consecutive_failures = 0

    def inject_fault(self, exc: Exception) -> None:
        """Queue an exception to be raised when the next window is
        processed — the seam deterministic chaos testing hooks into."""
        self._queued_faults.append(exc)

    # ------------------------------------------------------------------
    def push(self, snapshot) -> StreamResult | None:
        """Guarded :meth:`StreamingInference.push`.

        Poison snapshots are dead-lettered and ``None`` is returned (the
        stream position does not advance — the feed should redeliver a
        clean snapshot).  Engine faults while a window processes degrade
        that window to the reference engine; the results come back as if
        nothing happened, with the incident recorded.
        """
        self._check_circuit()
        step = self.stream._timestamp + self.stream.pending
        reason = snapshot_violation(
            snapshot,
            num_vertices=self.stream._num_vertices,
            dim=self.model.in_dim,
        )
        if reason is not None:
            self._reject_snapshot(step, reason, snapshot)
            return None
        if self.stream.pending + 1 < self.stream.window_size:
            return self.stream.push(snapshot)  # pure buffering: no risk
        carry = self.stream.carry_state()
        self._own.checkpoints_taken += 1
        window = [s.copy() for s in carry["pending"]] + [snapshot]
        try:
            if self._queued_faults:
                raise self._queued_faults.pop(0)
            result = self.stream.push(snapshot)
        except (SanitizerViolation, FloatingPointError, RuntimeError) as exc:
            return self._recover(carry, window, exc)
        self._consecutive_failures = 0
        return result

    def flush(self) -> StreamResult | None:
        """Guarded :meth:`StreamingInference.flush`."""
        self._check_circuit()
        if self.stream.pending == 0:
            return None
        carry = self.stream.carry_state()
        self._own.checkpoints_taken += 1
        window = [s.copy() for s in carry["pending"]]
        try:
            if self._queued_faults:
                raise self._queued_faults.pop(0)
            result = self.stream.flush()
        except (SanitizerViolation, FloatingPointError, RuntimeError) as exc:
            return self._recover(carry, window, exc)
        self._consecutive_failures = 0
        return result

    # ------------------------------------------------------------------
    def _check_circuit(self) -> None:
        if self._open:
            raise CircuitOpenError(
                f"circuit open after {self._consecutive_failures}"
                " consecutive failures; call reset_circuit() to resume"
            )

    def _note_failure(self) -> None:
        self._consecutive_failures += 1
        if (
            self.failure_threshold
            and self._consecutive_failures >= self.failure_threshold
        ):
            self._open = True

    def _reject_snapshot(self, step: int, reason: str, snapshot) -> None:
        self.dlq.record(step, reason, payload=snapshot)
        self._own.dead_letter_events += 1
        self._own.incidents += 1
        self.incidents.append(
            Incident(
                window_index=self.stream._window_index,
                step=step,
                kind="poison-snapshot",
                action="dead-lettered",
                detail=reason,
            )
        )
        self._note_failure()

    def _recover(self, carry: dict, window, exc: Exception) -> StreamResult:
        """Roll back to the pre-window carry, then re-execute the window
        on the reference path."""
        self.stream.restore_carry(carry)
        self._own.restores += 1
        self._own.incidents += 1
        kind = (
            "sanitizer-violation"
            if isinstance(exc, SanitizerViolation)
            else "engine-fault"
        )
        self.incidents.append(
            Incident(
                window_index=carry["window_index"],
                step=carry["timestamp"],
                kind=kind,
                action="degraded",
                detail=str(exc),
                component=getattr(exc, "component", "")
                or type(exc).__name__,
            )
        )
        result = self._degrade(carry, window)
        self._note_failure()
        return result

    def _degrade(self, carry: dict, window) -> StreamResult:
        """Re-execute ``window`` with exact reference-engine semantics.

        This is the per-snapshot body of :meth:`ReferenceEngine.run`
        seeded with the carried state: GNN forward, cell step, absent
        rows frozen, idempotent weight-evolution advance — so a degraded
        window's outputs are bit-identical to what the reference engine
        would have produced at this position in the stream.  Accounting
        uses the reference engine's conventional (everything-moved)
        pattern: degradation is correct but slower, and the metrics say
        so.
        """
        model = self.model
        n = window[0].num_vertices
        state = carry["state"]
        state = model.init_state(n) if state is None else state.copy()
        h_out = carry["h_prev"]
        h_out = (
            np.zeros((n, model.out_dim), dtype=np.float32)
            if h_out is None
            else h_out.copy()
        )
        if hasattr(model, "advance_window"):
            model.advance_window(carry["window_index"])
        ref = ReferenceEngine(model, window_size=self.stream.window_size)
        m = ExecutionMetrics()
        outputs: list[np.ndarray] = []
        z = None
        for off, snap in enumerate(window):
            snap.timestamp = carry["timestamp"] + off
            z = model.gnn_forward(snap)
            h, new_state = model.cell_step(z, state, snap)
            absent = np.flatnonzero(~snap.present)
            if absent.size:
                h[absent] = h_out[absent]
                new_state.select_rows(absent, state)
            h_out = h
            state = new_state
            outputs.append(h_out.copy())
            ref._account_snapshot(m, snap)
            m.snapshots_processed += 1
        m.windows_processed += 1
        m.fallback_windows += 1
        return self.stream.adopt_window(window, outputs, state, z, m)


# ----------------------------------------------------------------------
# chaos campaign
# ----------------------------------------------------------------------
@dataclass
class ChaosReport:
    """Everything a seeded fault campaign observed."""

    outputs: list = field(default_factory=list)
    incidents: list = field(default_factory=list)
    dead_letters: list = field(default_factory=list)
    metrics: ExecutionMetrics = field(default_factory=ExecutionMetrics)
    plan_counts: dict = field(default_factory=dict)
    retry_delays: list = field(default_factory=list)

    def summary(self) -> str:
        """Human-readable incident report (the ``repro chaos`` output)."""
        m = self.metrics
        lines = [
            "chaos campaign report",
            f"  planned faults      : {sum(self.plan_counts.values())}",
        ]
        for kind in sorted(self.plan_counts):
            lines.append(f"    {kind:<20}: {self.plan_counts[kind]}")
        lines += [
            f"  incidents absorbed  : {m.incidents}",
            f"  dead-lettered       : {m.dead_letter_events}"
            f" (queue depth {len(self.dead_letters)})",
            f"  degraded windows    : {m.fallback_windows}",
            f"  storage retries     : {m.retries}",
            f"  checkpoints taken   : {m.checkpoints_taken}",
            f"  carry restores      : {m.restores}",
            f"  outputs released    : {len(self.outputs)}",
        ]
        if self.incidents:
            lines.append("  incident log:")
            for inc in self.incidents:
                lines.append(
                    f"    window {inc.window_index:>3} step {inc.step:>3}:"
                    f" {inc.kind} -> {inc.action}"
                )
        if self.dead_letters:
            lines.append("  dead-letter reasons:")
            seen: dict[str, int] = {}
            for letter in self.dead_letters:
                seen[letter.reason] = seen.get(letter.reason, 0) + 1
            for reason in sorted(seen):
                lines.append(f"    {seen[reason]}x {reason}")
        return "\n".join(lines)


def run_chaos_campaign(
    model: DGNNModel,
    graph: DynamicGraph,
    plan: FaultPlan,
    *,
    window_size: int = 4,
    enable_skipping: bool = True,
    retry_policy: RetryPolicy | None = None,
) -> ChaosReport:
    """Serve ``graph`` through the resilient path under ``plan``'s faults.

    The graph is re-expressed as its event stream, as a production feed
    would deliver it.  Per step ``t``:

    * event faults are appended to step ``t``'s legitimate events; the
      batch goes through :class:`~repro.resilience.ingest.GuardedIngest`,
      which quarantines exactly the poison events and rebuilds snapshot
      ``t`` from the clean remainder (events always apply to the true
      previous snapshot, so a dropped poison event cannot cascade);
    * engine faults are queued on the supervisor and fire while the
      enclosing window processes, degrading it to the reference engine;
    * snapshot faults deliver a torn copy first — the supervisor
      dead-letters it — and then redeliver the clean snapshot, as a
      replaying feed would.

    Storage faults run after streaming: the accelerator simulator is
    invoked with a :class:`~repro.resilience.faults.FlakyHBM` under
    :func:`~repro.resilience.ingest.with_retry`.

    The campaign completes with zero unhandled exceptions for any plan;
    the returned :class:`ChaosReport` carries the released outputs,
    incident log, dead letters, and merged metrics for reconciliation
    against ``plan.counts()``.
    """
    supervisor = ResilientStreamingInference(
        model,
        window_size=window_size,
        enable_skipping=enable_skipping,
        failure_threshold=0,  # campaigns absorb every fault; no breaker
    )
    guard = GuardedIngest(dlq=supervisor.dlq)
    report = ChaosReport(plan_counts=plan.counts())
    steps = event_stream(graph)
    for t in range(graph.num_snapshots):
        if t == 0:
            delivered: CSRSnapshot = graph[0].copy()
        else:
            events = list(steps[t - 1])
            events += [
                plan.poison_event(spec, graph[t])
                for spec in plan.event_specs(t)
            ]
            delivered = guard.apply(graph[t - 1], events, step=t)
        for spec in plan.engine_specs(t):
            supervisor.inject_fault(plan.violation(spec))
        for spec in plan.snapshot_specs(t):
            torn = plan.corrupt_snapshot(spec, delivered)
            supervisor.push(torn)  # rejected: dead-lettered, returns None
        result = supervisor.push(delivered)
        if result is not None:
            report.outputs.extend(result.outputs)
    result = supervisor.flush()
    if result is not None:
        report.outputs.extend(result.outputs)

    failures = plan.storage_failures()
    if failures:
        from ..accel.config import TaGNNConfig
        from ..accel.tagnn import TaGNNSimulator

        sim = TaGNNSimulator(TaGNNConfig(window_size=window_size))
        flaky = FlakyHBM(sim.config.hbm(), failures=failures)
        policy = (
            retry_policy
            if retry_policy is not None
            else RetryPolicy(max_attempts=failures + 1, seed=plan.seed)
        )
        _, delays = with_retry(
            lambda: sim.simulate(model, graph, "chaos", hbm=flaky),
            policy=policy,
            metrics=supervisor._own,
        )
        report.retry_delays = delays

    report.incidents = list(supervisor.incidents)
    report.dead_letters = list(supervisor.dlq.letters)
    report.metrics = supervisor.metrics.merge(guard.metrics)
    return report
