"""Guarded ingestion: validation, dead-lettering, deterministic retry.

This is the first line of defence between a hostile update feed and the
streaming engine.  Three mechanisms, composable and individually
testable:

* :func:`snapshot_violation` / :func:`repro.graphs.updates.event_violation`
  decide *whether* an artefact may enter the system;
* :class:`GuardedIngest` filters an event batch against the evolving
  replay state, applying the valid prefix semantics of
  :func:`~repro.graphs.updates.apply_events` while diverting poison
  events to a :class:`DeadLetterQueue` instead of raising;
* :func:`with_retry` wraps transiently-failing callables (storage
  requests) in bounded retry with deterministic exponential backoff plus
  seeded jitter.  Delays are **virtual** — recorded, never slept — so the
  schedule documents what a deployment would do while tests stay instant
  and rule R001 (no wall-clock) stays green.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..engine.metrics import ExecutionMetrics
from ..graphs.snapshot import CSRSnapshot
from ..graphs.updates import (
    UpdateEvent,
    UpdateKind,
    _decode_events,
    _decoded_violation,
    _edge_keys_sorted,
    apply_events,
    event_violation,
)
from .faults import TransientStorageError

__all__ = [
    "DeadLetter",
    "DeadLetterQueue",
    "GuardedIngest",
    "RetryExhaustedError",
    "RetryPolicy",
    "redrain_dead_letters",
    "snapshot_violation",
    "with_retry",
]


class RetryExhaustedError(RuntimeError):
    """A transient fault persisted past the retry budget."""


@dataclass(frozen=True)
class DeadLetter:
    """One quarantined artefact: when it arrived and why it was refused."""

    step: int
    reason: str
    payload: object = None

    def __post_init__(self) -> None:
        if self.step < 0:
            raise ValueError(f"dead-letter step must be >= 0, got {self.step}")


class DeadLetterQueue:
    """Ordered quarantine for poison events and snapshots.

    Nothing is ever dropped silently: every artefact validation refuses
    lands here with its rejection reason, so an operator can replay or
    audit the stream after the fact.
    """

    def __init__(self) -> None:
        self.letters: list[DeadLetter] = []

    def record(self, step: int, reason: str, payload=None) -> DeadLetter:
        letter = DeadLetter(step=step, reason=reason, payload=payload)
        self.letters.append(letter)
        return letter

    def __len__(self) -> int:
        return len(self.letters)

    def by_reason(self) -> dict[str, int]:
        """Tally of quarantined artefacts by rejection reason."""
        out: dict[str, int] = {}
        for letter in self.letters:
            out[letter.reason] = out.get(letter.reason, 0) + 1
        return out

    # ------------------------------------------------------------------
    # capture persistence (the ``repro dlq`` seam)
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Write the queue as a pickle-free ``.npz`` capture.

        Event payloads are flattened field-by-field (kind / vertex / edge
        pair / feature vector); snapshot and exotic payloads are recorded
        as a descriptive marker only — they are not replayable artefacts,
        and loading a capture never executes code.
        """
        arrays: dict = {"meta/count": np.int64(len(self.letters))}
        for i, letter in enumerate(self.letters):
            p = f"letters/{i}"
            arrays[f"{p}/step"] = np.int64(letter.step)
            arrays[f"{p}/reason"] = np.str_(letter.reason)
            payload = letter.payload
            if isinstance(payload, UpdateEvent) and self._encodable(payload):
                kind = payload.kind
                arrays[f"{p}/ptype"] = np.str_("event")
                arrays[f"{p}/kind"] = np.str_(
                    kind.value if isinstance(kind, UpdateKind) else str(kind)
                )
                arrays[f"{p}/kind_known"] = np.bool_(
                    isinstance(kind, UpdateKind)
                )
                arrays[f"{p}/vertex"] = np.int64(int(payload.vertex))
                if isinstance(payload.payload, tuple):
                    arrays[f"{p}/edge"] = np.asarray(
                        [int(payload.payload[0]), int(payload.payload[1])],
                        dtype=np.int64,
                    )
                elif isinstance(payload.payload, np.ndarray):
                    arrays[f"{p}/feature"] = np.asarray(payload.payload)
            elif payload is None:
                arrays[f"{p}/ptype"] = np.str_("none")
            else:
                arrays[f"{p}/ptype"] = np.str_("opaque")
                arrays[f"{p}/desc"] = np.str_(type(payload).__name__)
        np.savez_compressed(path, **arrays)

    @staticmethod
    def _encodable(ev: UpdateEvent) -> bool:
        """Whether an event survives the flat-array round trip."""
        if not isinstance(ev.vertex, (int, np.integer)):
            return False
        payload = ev.payload
        if payload is None or isinstance(payload, np.ndarray):
            return True
        return (
            isinstance(payload, tuple)
            and len(payload) == 2
            and all(isinstance(x, (int, np.integer)) for x in payload)
        )

    @classmethod
    def load(cls, path) -> "DeadLetterQueue":
        """Rebuild a queue from a capture written by :meth:`save`."""
        queue = cls()
        with np.load(path, allow_pickle=False) as data:
            keys = set(data.files)
            for i in range(int(data["meta/count"])):
                p = f"letters/{i}"
                step = int(data[f"{p}/step"])
                reason = str(np.asarray(data[f"{p}/reason"]).item())
                ptype = str(np.asarray(data[f"{p}/ptype"]).item())
                payload: object = None
                if ptype == "event":
                    kind_raw = str(np.asarray(data[f"{p}/kind"]).item())
                    kind: object = (
                        UpdateKind(kind_raw)
                        if bool(data[f"{p}/kind_known"])
                        else kind_raw
                    )
                    body: object = None
                    if f"{p}/edge" in keys:
                        pair = np.asarray(data[f"{p}/edge"])
                        body = (int(pair[0]), int(pair[1]))
                    elif f"{p}/feature" in keys:
                        body = np.asarray(data[f"{p}/feature"])
                    payload = UpdateEvent(
                        kind,  # type: ignore[arg-type]
                        int(data[f"{p}/vertex"]),
                        body,  # type: ignore[arg-type]
                    )
                elif ptype == "opaque":
                    payload = str(np.asarray(data[f"{p}/desc"]).item())
                queue.record(step, reason, payload=payload)
        return queue


# ----------------------------------------------------------------------
# snapshot validation
# ----------------------------------------------------------------------
def snapshot_violation(
    snap,
    *,
    num_vertices: int | None = None,
    dim: int | None = None,
) -> str | None:
    """Explain why ``snap`` must not enter the stream, or ``None``.

    Catches artefacts that bypassed :class:`CSRSnapshot.__post_init__`
    (torn writes deserialised straight into object fields), non-finite
    feature values, and — when ``num_vertices``/``dim`` are given —
    shape drift against the stream's pinned geometry.
    """
    if not isinstance(snap, CSRSnapshot):
        return f"not a CSRSnapshot: {type(snap).__name__}"
    indptr, indices = snap.indptr, snap.indices
    if indptr.ndim != 1 or indptr.size < 1:
        return "indptr is not a 1-d row-pointer array"
    n = indptr.size - 1
    if int(indptr[0]) != 0 or int(indptr[-1]) != indices.size:
        return (
            f"truncated CSR: indptr spans [{int(indptr[0])},"
            f" {int(indptr[-1])}] but indices holds {indices.size} entries"
        )
    if bool(np.any(np.diff(indptr) < 0)):
        return "indptr is not non-decreasing"
    if indices.size and (int(indices.min()) < 0 or int(indices.max()) >= n):
        return f"neighbour id out of range [0, {n})"
    if snap.present.shape != (n,):
        return f"present mask shape {snap.present.shape} != ({n},)"
    if snap.features.ndim != 2 or snap.features.shape[0] != n:
        return (
            f"features shape {snap.features.shape} does not cover"
            f" {n} vertices"
        )
    if not bool(np.isfinite(snap.features).all()):
        return "non-finite feature values"
    if num_vertices is not None and n != num_vertices:
        return f"vertex count {n} != expected {num_vertices}"
    if dim is not None and snap.features.shape[1] != dim:
        return (
            f"feature dimension {snap.features.shape[1]} != expected {dim}"
        )
    return None


# ----------------------------------------------------------------------
# guarded event application
# ----------------------------------------------------------------------
class GuardedIngest:
    """Filter hostile event batches in front of ``apply_events``.

    Validation replays the same evolving state (presence mask + live
    edge-key set) that strict :func:`apply_events` checks against, so an
    event is quarantined if and only if the strict replay would raise on
    it; the surviving events are guaranteed to apply cleanly.
    """

    def __init__(self, *, dlq: DeadLetterQueue | None = None):
        self.dlq = dlq if dlq is not None else DeadLetterQueue()
        self.metrics = ExecutionMetrics()

    def filter_events(
        self, snap: CSRSnapshot, events, *, step: int = 0
    ) -> tuple[list, list]:
        """Split ``events`` into (clean, quarantined) against ``snap``."""
        # Fast path: the batched validator proves the whole batch clean
        # without replaying it event by event.  Any anomaly — a malformed
        # payload or any strict-replay violation — drops to the exact
        # sequential walk below, which dead-letters poison events in
        # arrival order with the same reasons as before.
        events = list(events)
        dec = _decode_events(events, snap.num_vertices, snap.dim)
        if dec is not None and not _decoded_violation(
            snap, dec, _edge_keys_sorted(snap)
        ):
            return events, []
        n = snap.num_vertices
        present = snap.present.copy()
        src = np.repeat(np.arange(n, dtype=np.int64), snap.degrees)
        keys = set((src * n + snap.indices.astype(np.int64)).tolist())
        clean: list = []
        rejected: list = []
        for ev in events:  # repro: noqa R006 — slow path, exact DLQ order
            reason = event_violation(
                ev,
                num_vertices=n,
                dim=snap.dim,
                present=present,
                edge_keys=keys,
            )
            if reason is not None:
                self.dlq.record(step, reason, payload=ev)
                self.metrics.dead_letter_events += 1
                self.metrics.incidents += 1
                rejected.append(ev)
                continue
            clean.append(ev)
            if ev.kind is UpdateKind.VERTEX_DEPART:
                present[ev.vertex] = False
            elif ev.kind is UpdateKind.VERTEX_ARRIVE:
                present[ev.vertex] = True
            elif ev.kind is UpdateKind.EDGE_DELETE:
                s, d = ev.payload  # type: ignore[misc]
                keys.discard(int(s) * n + int(d))
            elif ev.kind is UpdateKind.EDGE_INSERT:
                s, d = ev.payload  # type: ignore[misc]
                keys.add(int(s) * n + int(d))
        return clean, rejected

    def apply(
        self, snap: CSRSnapshot, events, *, step: int = 0
    ) -> CSRSnapshot:
        """Quarantine poison events, then apply the clean remainder."""
        clean, _ = self.filter_events(snap, events, step=step)
        return apply_events(snap, clean)


# ----------------------------------------------------------------------
# deterministic re-drain
# ----------------------------------------------------------------------
def redrain_dead_letters(
    queue: DeadLetterQueue, graph
) -> tuple[list[DeadLetter], list[DeadLetter]]:
    """Re-validate a capture against ``graph``'s authoritative snapshots.

    Each event-payload letter is pushed back through the guarded-ingest
    validator at its recorded step (clamped to the graph's last
    snapshot); letters whose payload is not a replayable event — torn
    snapshots, opaque artefacts — stay quarantined by definition.
    Returns ``(readmitted, still_poison)``; the split is deterministic,
    so running a re-drain twice yields the same verdicts.
    """
    readmitted: list[DeadLetter] = []
    still_poison: list[DeadLetter] = []
    last = graph.num_snapshots - 1
    for letter in queue.letters:
        payload = letter.payload
        if not isinstance(payload, UpdateEvent):
            still_poison.append(letter)
            continue
        snap = graph[min(letter.step, last)]
        _, rejected = GuardedIngest().filter_events(
            snap, [payload], step=letter.step
        )
        (still_poison if rejected else readmitted).append(letter)
    return readmitted, still_poison


# ----------------------------------------------------------------------
# bounded deterministic retry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with seeded jitter; all delays virtual."""

    max_attempts: int = 3
    base_delay_s: float = 0.001
    factor: float = 2.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay_s < 0.0:
            raise ValueError(
                f"base_delay_s must be >= 0, got {self.base_delay_s}"
            )
        if self.factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {self.factor}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.seed < 0:
            raise ValueError(f"seed must be >= 0, got {self.seed}")

    def delay_s(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based) — deterministic for
        a fixed (seed, attempt)."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        u = float(np.random.default_rng([self.seed, attempt]).random())
        return (
            self.base_delay_s
            * self.factor ** (attempt - 1)
            * (1.0 + self.jitter * u)
        )


def with_retry(
    fn,
    *,
    policy: RetryPolicy | None = None,
    retryable: tuple = (TransientStorageError,),
    metrics: ExecutionMetrics | None = None,
):
    """Call ``fn`` under bounded retry; returns ``(result, delays)``.

    ``delays`` is the list of virtual backoff delays (seconds) the policy
    scheduled between attempts — recorded, never slept.  Non-retryable
    exceptions propagate untouched; exhausting the budget raises
    :class:`RetryExhaustedError` chained to the last failure.  When
    ``metrics`` is given, every call attempt bumps
    ``metrics.retry_attempts``, each failed attempt bumps
    ``metrics.retries``, and every virtual backoff delay accumulates into
    ``metrics.retry_backoff_ns`` — so retry pressure shows up in the same
    report as throughput instead of being invisible.
    """
    policy = policy if policy is not None else RetryPolicy()
    delays: list[float] = []
    last: Exception | None = None
    for attempt in range(1, policy.max_attempts + 1):
        if metrics is not None:
            metrics.retry_attempts += 1
        try:
            return fn(), delays
        except retryable as exc:
            last = exc
            if metrics is not None:
                metrics.retries += 1
            if attempt < policy.max_attempts:
                delay = policy.delay_s(attempt)
                delays.append(delay)
                if metrics is not None:
                    metrics.retry_backoff_ns += int(round(delay * 1e9))
    raise RetryExhaustedError(
        f"gave up after {policy.max_attempts} attempts: {last}"
    ) from last
