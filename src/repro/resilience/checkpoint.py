"""Checkpoint/replay for the streaming engine's carry state.

:class:`~repro.engine.streaming.StreamingInference` carries five things
across window boundaries: the pending (not yet processed) snapshots, the
per-vertex recurrent state, the previous window's last GNN output and
snapshot (the delta baseline), the similarity cache pre-activations, and
the window index that drives weight evolution.  A crash loses all of it —
re-pushing the remaining feed from scratch would produce *different*
outputs, because the recurrent state is path-dependent.

This module serialises that carry bundle so a stream can resume
**bit-identically** from any event boundary.  Design points:

* **No pickle.**  Everything is flattened into a ``str -> ndarray``
  mapping written with :func:`numpy.savez_compressed`; strings travel as
  0-d unicode arrays.  Loading a checkpoint never executes code.
* **Self-describing.**  ``meta/format`` versions the layout;
  ``meta/state_kind`` records the recurrent-state class (``lstm`` /
  ``gru`` / ``none``); optional sections (cache, previous window,
  pending snapshots) are present only when the stream carried them.
* **Weight evolution needs only the window index.**  Evolving models
  (EvolveGCN-style) derive window ``i`` weights from their initial
  weights idempotently via ``advance_window(i)``, so restoring
  ``meta/window_index`` restores the weight trajectory; no weight
  tensors are stored.

The key layout (format 1)::

    meta/{format,window_size,timestamp,window_index,first,
          num_vertices,num_pending,state_kind}
    metrics/<field>            one int64 per scalar ExecutionMetrics field
    metrics/window_modes       (W, 3) int64 per-window (full, delta, skip)
    state/h [, state/c]        recurrent state (by meta/state_kind)
    cache/{zx,zh,z_input}      similarity-cache pre-activations (optional)
    carry/{h_prev,z_prev}      last outputs / GNN result (optional)
    snap_prev/<field>          delta-baseline snapshot (optional)
    pending/<i>/<field>        buffered snapshots, i < meta/num_pending
"""

from __future__ import annotations

import io
import os
import zipfile
from pathlib import Path

import numpy as np

from ..engine.metrics import SCALAR_FIELDS, ExecutionMetrics
from ..engine.streaming import StreamingInference
from ..graphs.snapshot import CSRSnapshot
from ..models.rnn import GRUState, LSTMState
from .faults import TransientStorageError

__all__ = [
    "CHECKPOINT_FORMAT",
    "CheckpointStore",
    "CorruptCheckpointError",
    "arrays_to_carry",
    "carry_to_arrays",
    "load_checkpoint",
    "restore_stream",
    "save_checkpoint",
]

CHECKPOINT_FORMAT = 1

_SNAP_FIELDS = ("indptr", "indices", "features", "present")


def _snapshot_arrays(prefix: str, snap: CSRSnapshot) -> dict:
    out = {f"{prefix}/{name}": getattr(snap, name) for name in _SNAP_FIELDS}
    out[f"{prefix}/timestamp"] = np.int64(snap.timestamp)
    return out


def _snapshot_from(data, prefix: str) -> CSRSnapshot:
    return CSRSnapshot(
        indptr=np.asarray(data[f"{prefix}/indptr"]),
        indices=np.asarray(data[f"{prefix}/indices"]),
        features=np.asarray(data[f"{prefix}/features"]),
        present=np.asarray(data[f"{prefix}/present"]),
        timestamp=int(data[f"{prefix}/timestamp"]),
    )


# ----------------------------------------------------------------------
def carry_to_arrays(carry: dict) -> dict:
    """Flatten a ``StreamingInference.carry_state()`` mapping into the
    ``str -> ndarray`` checkpoint layout documented above."""
    num_vertices = carry["num_vertices"]
    arrays: dict = {
        "meta/format": np.int64(CHECKPOINT_FORMAT),
        "meta/window_size": np.int64(carry["window_size"]),
        "meta/timestamp": np.int64(carry["timestamp"]),
        "meta/window_index": np.int64(carry["window_index"]),
        "meta/first": np.bool_(carry["first"]),
        "meta/num_vertices": np.int64(
            -1 if num_vertices is None else num_vertices
        ),
        "meta/num_pending": np.int64(len(carry["pending"])),
    }
    metrics = carry["metrics"]
    for name in SCALAR_FIELDS:
        arrays[f"metrics/{name}"] = np.int64(getattr(metrics, name))
    arrays["metrics/window_modes"] = np.asarray(
        metrics.window_modes, dtype=np.int64
    ).reshape(-1, 3)
    state = carry["state"]
    if state is None:
        arrays["meta/state_kind"] = np.str_("none")
    elif isinstance(state, LSTMState):
        arrays["meta/state_kind"] = np.str_("lstm")
        arrays["state/h"] = state.h
        arrays["state/c"] = state.c
    elif isinstance(state, GRUState):
        arrays["meta/state_kind"] = np.str_("gru")
        arrays["state/h"] = state.h
    else:
        raise ValueError(
            f"cannot checkpoint recurrent state of type {type(state).__name__}"
        )
    if carry["cache"] is not None:
        for name in ("zx", "zh", "z_input"):
            arrays[f"cache/{name}"] = carry["cache"][name]
    for name in ("h_prev", "z_prev"):
        if carry[name] is not None:
            arrays[f"carry/{name}"] = carry[name]
    if carry["snap_prev"] is not None:
        arrays.update(_snapshot_arrays("snap_prev", carry["snap_prev"]))
    for i, snap in enumerate(carry["pending"]):
        arrays.update(_snapshot_arrays(f"pending/{i}", snap))
    return arrays


def arrays_to_carry(data) -> dict:
    """Rebuild a carry mapping from the flat checkpoint layout.

    ``data`` is anything indexable by key with a ``files``/key listing —
    an :class:`numpy.lib.npyio.NpzFile` or a plain dict.  Snapshots are
    reconstructed through ``CSRSnapshot.__init__`` so a tampered
    checkpoint fails validation instead of entering the stream.
    """
    keys = set(data.files) if hasattr(data, "files") else set(data)
    fmt = int(data["meta/format"])
    if fmt != CHECKPOINT_FORMAT:
        raise ValueError(
            f"unsupported checkpoint format {fmt}"
            f" (this build reads format {CHECKPOINT_FORMAT})"
        )
    metrics = ExecutionMetrics(
        **{
            name: int(data[f"metrics/{name}"])
            for name in SCALAR_FIELDS
            if f"metrics/{name}" in keys
        }
    )
    if "metrics/window_modes" in keys:
        modes = np.asarray(data["metrics/window_modes"], dtype=np.int64)
        metrics.window_modes = [
            (int(f), int(d), int(s)) for f, d, s in modes.reshape(-1, 3)
        ]
    state_kind = np.asarray(data["meta/state_kind"]).item()
    if state_kind == "none":
        state = None
    elif state_kind == "lstm":
        state = LSTMState(
            np.asarray(data["state/h"]), np.asarray(data["state/c"])
        )
    elif state_kind == "gru":
        state = GRUState(np.asarray(data["state/h"]))
    else:
        raise ValueError(f"unknown checkpoint state kind {state_kind!r}")
    cache = None
    if "cache/zx" in keys:
        cache = {
            name: np.asarray(data[f"cache/{name}"])
            for name in ("zx", "zh", "z_input")
        }
    raw_n = int(data["meta/num_vertices"])
    return {
        "window_size": int(data["meta/window_size"]),
        "pending": [
            _snapshot_from(data, f"pending/{i}")
            for i in range(int(data["meta/num_pending"]))
        ],
        "timestamp": int(data["meta/timestamp"]),
        "window_index": int(data["meta/window_index"]),
        "metrics": metrics,
        "state": state,
        "cache": cache,
        "h_prev": (
            np.asarray(data["carry/h_prev"]) if "carry/h_prev" in keys else None
        ),
        "z_prev": (
            np.asarray(data["carry/z_prev"]) if "carry/z_prev" in keys else None
        ),
        "snap_prev": (
            _snapshot_from(data, "snap_prev")
            if "snap_prev/indptr" in keys
            else None
        ),
        "first": bool(data["meta/first"]),
        "num_vertices": None if raw_n < 0 else raw_n,
    }


# ----------------------------------------------------------------------
def save_checkpoint(stream: StreamingInference, path) -> None:
    """Capture ``stream``'s carry state into a ``.npz`` checkpoint at
    ``path`` (a filesystem path or writable binary file object)."""
    np.savez_compressed(path, **carry_to_arrays(stream.carry_state()))


def load_checkpoint(path) -> dict:
    """Read a checkpoint back into a carry mapping ready for
    :meth:`StreamingInference.restore_carry`."""
    with np.load(path, allow_pickle=False) as data:
        return arrays_to_carry(data)


def restore_stream(stream: StreamingInference, path) -> StreamingInference:
    """Install the checkpoint at ``path`` into ``stream`` and return it.

    The stream's model/config must match the checkpointed run; the
    restored stream then reproduces the uninterrupted run bit-identically
    from the captured boundary.
    """
    stream.restore_carry(load_checkpoint(path))
    return stream


# ----------------------------------------------------------------------
# rotating checkpoint store (keep-last-K retention)
# ----------------------------------------------------------------------
class CorruptCheckpointError(RuntimeError):
    """A stored checkpoint failed to deserialise (torn write)."""


class CheckpointStore:
    """Rotating checkpoint storage with a keep-last-K retention policy.

    :func:`save_checkpoint` alone accumulates files forever; the store
    rotates them: every :meth:`save` writes a new monotonically-numbered
    checkpoint and prunes everything older than the newest ``keep_last``.
    Because any single checkpoint resumes the stream bit-identically,
    retention only bounds how far back a recovery can start — never
    whether it is exact.

    Backed by a directory when ``directory`` is given, otherwise by an
    in-memory byte store (same key space, no filesystem).  Two chaos
    seams mirror real storage failure modes: :meth:`corrupt_latest`
    tears the newest checkpoint mid-write, and :meth:`fail_next_loads`
    makes upcoming loads raise a retryable
    :class:`~repro.resilience.faults.TransientStorageError` — recovery
    paths are expected to ride :func:`~repro.resilience.ingest.with_retry`
    over :meth:`load` and fall back to older checkpoints on
    :class:`CorruptCheckpointError`.
    """

    def __init__(self, directory=None, *, keep_last: int = 3,
                 prefix: str = "ckpt"):
        if keep_last < 1:
            raise ValueError(f"keep_last must be >= 1, got {keep_last}")
        self.keep_last = keep_last
        self.prefix = prefix
        self.directory = None if directory is None else Path(directory)
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self._blobs: dict[str, bytes] = {}
        self._seq = 0
        self._transient_failures = 0

    # ------------------------------------------------------------------
    def keys(self) -> list[str]:
        """Checkpoint keys, oldest first."""
        if self.directory is None:
            return sorted(self._blobs)
        return sorted(
            p.name for p in self.directory.glob(f"{self.prefix}-*.npz")
        )

    def __len__(self) -> int:
        return len(self.keys())

    def save(self, stream: StreamingInference) -> str:
        """Checkpoint ``stream`` and prune beyond ``keep_last``."""
        self._seq += 1
        key = f"{self.prefix}-{self._seq:08d}.npz"
        if self.directory is None:
            buf = io.BytesIO()
            save_checkpoint(stream, buf)
            self._blobs[key] = buf.getvalue()
        else:
            save_checkpoint(stream, self.directory / key)
        for stale in self.keys()[: -self.keep_last]:
            self._delete(stale)
        return key

    def load(self, key: str) -> dict:
        """Read one checkpoint back into a carry mapping.

        Raises :class:`TransientStorageError` when a scheduled transient
        failure is pending (retryable) and :class:`CorruptCheckpointError`
        when the blob does not deserialise (permanent for this key).
        """
        if self._transient_failures > 0:
            self._transient_failures -= 1
            raise TransientStorageError(
                f"injected transient failure loading {key}"
            )
        try:
            if self.directory is None:
                data = io.BytesIO(self._blobs[key])
            else:
                data = self.directory / key
                if not os.path.exists(data):
                    raise KeyError(key)
            return load_checkpoint(data)
        except KeyError:
            raise
        except (ValueError, OSError, zipfile.BadZipFile, EOFError) as exc:
            raise CorruptCheckpointError(
                f"checkpoint {key} failed to deserialise: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    # chaos seams
    # ------------------------------------------------------------------
    def corrupt_latest(self) -> str | None:
        """Tear the newest checkpoint (truncate its bytes mid-archive)."""
        stored = self.keys()
        if not stored:
            return None
        key = stored[-1]
        if self.directory is None:
            blob = self._blobs[key]
            self._blobs[key] = blob[: max(1, len(blob) // 2)]
        else:
            path = self.directory / key
            blob = path.read_bytes()
            path.write_bytes(blob[: max(1, len(blob) // 2)])
        return key

    def fail_next_loads(self, count: int) -> None:
        """Schedule ``count`` retryable load failures (storage flake)."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        self._transient_failures += count

    # ------------------------------------------------------------------
    def _delete(self, key: str) -> None:
        if self.directory is None:
            self._blobs.pop(key, None)
        else:
            (self.directory / key).unlink(missing_ok=True)
