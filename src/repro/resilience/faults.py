"""Deterministic fault injection for the streaming serving path.

A real dynamic-graph feed is hostile: events arrive corrupted, duplicated
or out of order, feature rows carry NaN/Inf, snapshots are torn mid-write,
and the storage backend fails transiently.  This module turns each of
those failure modes into a *seeded, reproducible* fault so every recovery
path in :mod:`repro.resilience` is exercised by construction — no
wall-clock time and no unseeded entropy (rule R001 stays green), so a
chaos campaign replays bit-identically for a fixed plan.

A :class:`FaultPlan` is a schedule of :class:`FaultSpec` records pinned to
*steps* (snapshot/timestamp indices of the stream).  For each spec the
plan manufactures exactly one concrete fault artefact:

===========================  ==============================================
fault kind                   artefact
===========================  ==============================================
``CORRUPT_EVENT``            event with an out-of-range vertex id
``DUPLICATE_EVENT``          insert of an edge that already exists
``OUT_OF_ORDER_EVENT``       delete of an edge that does not exist yet
``UNKNOWN_KIND_EVENT``       event whose kind is not an :class:`UpdateKind`
``NAN_FEATURE``              feature payload containing NaN
``INF_FEATURE``              feature payload containing Inf
``TRUNCATED_SNAPSHOT``       CSR arrays cut short (torn write)
``TRANSIENT_STORAGE``        retryable :class:`TransientStorageError`
``SANITIZER_VIOLATION``      synthetic :class:`SanitizerViolation` raised
                             while a window is being processed
``WORKER_CRASH``             shard worker dies and loses in-memory state
``WORKER_STALL``             shard worker stops heartbeating indefinitely
``SLOW_SHARD``               shard worker keeps running at a fraction of
                             its normal rate (hot/straggler shard)
``TORN_CHECKPOINT``          shard's newest checkpoint is truncated
===========================  ==============================================

The shard-level kinds (``SHARD_FAULTS``) target one member of a
:class:`repro.serving.ShardCluster` — their :class:`FaultSpec` carries a
``shard`` index — and are scheduled with :meth:`FaultPlan.generate_cluster`
so every shard is killed and stalled at least once per campaign.  The
original single-stream kinds are grouped as ``STREAM_FAULTS``.

Poison artefacts are built so that validation *must* reject them — each
event fault produces exactly one invalid event, which makes dead-letter
and incident counts exactly predictable from the plan.
"""

from __future__ import annotations

import copy
import enum
from dataclasses import dataclass

import numpy as np

from ..check.sanitizer import SanitizerViolation
from ..graphs.snapshot import CSRSnapshot
from ..graphs.updates import UpdateEvent, UpdateKind

__all__ = [
    "ENGINE_FAULTS",
    "EVENT_FAULTS",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "FlakyHBM",
    "SHARD_FAULTS",
    "SNAPSHOT_FAULTS",
    "STORAGE_FAULTS",
    "STREAM_FAULTS",
    "TransientStorageError",
]


class TransientStorageError(RuntimeError):
    """A storage request failed in a retryable way (injected)."""


class FaultKind(enum.Enum):
    """Every failure mode the resilience layer must survive."""

    CORRUPT_EVENT = "corrupt_event"
    DUPLICATE_EVENT = "duplicate_event"
    OUT_OF_ORDER_EVENT = "out_of_order_event"
    UNKNOWN_KIND_EVENT = "unknown_kind_event"
    NAN_FEATURE = "nan_feature"
    INF_FEATURE = "inf_feature"
    TRUNCATED_SNAPSHOT = "truncated_snapshot"
    TRANSIENT_STORAGE = "transient_storage"
    SANITIZER_VIOLATION = "sanitizer_violation"
    WORKER_CRASH = "worker_crash"
    WORKER_STALL = "worker_stall"
    SLOW_SHARD = "slow_shard"
    TORN_CHECKPOINT = "torn_checkpoint"


#: faults delivered as poison :class:`UpdateEvent`s in the ingest stream
EVENT_FAULTS = frozenset(
    {
        FaultKind.CORRUPT_EVENT,
        FaultKind.DUPLICATE_EVENT,
        FaultKind.OUT_OF_ORDER_EVENT,
        FaultKind.UNKNOWN_KIND_EVENT,
        FaultKind.NAN_FEATURE,
        FaultKind.INF_FEATURE,
    }
)
#: faults delivered as malformed snapshots pushed at the stream
SNAPSHOT_FAULTS = frozenset({FaultKind.TRUNCATED_SNAPSHOT})
#: faults raised from inside window processing
ENGINE_FAULTS = frozenset({FaultKind.SANITIZER_VIOLATION})
#: faults raised from the O-CSR/HBM storage path
STORAGE_FAULTS = frozenset({FaultKind.TRANSIENT_STORAGE})
#: faults targeting one shard worker of a serving cluster
SHARD_FAULTS = frozenset(
    {
        FaultKind.WORKER_CRASH,
        FaultKind.WORKER_STALL,
        FaultKind.SLOW_SHARD,
        FaultKind.TORN_CHECKPOINT,
    }
)
#: the original single-stream kinds (everything that is not shard-level)
STREAM_FAULTS = EVENT_FAULTS | SNAPSHOT_FAULTS | ENGINE_FAULTS | STORAGE_FAULTS


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: *what* goes wrong at *which* step.

    Shard-level kinds additionally name *which* shard (``shard >= 0``);
    stream-level kinds leave ``shard`` at the sentinel ``-1``.
    """

    kind: FaultKind
    step: int
    shard: int = -1

    def __post_init__(self) -> None:
        if not isinstance(self.kind, FaultKind):
            raise ValueError(f"kind must be a FaultKind, got {self.kind!r}")
        if self.step < 0:
            raise ValueError(f"fault step must be >= 0, got {self.step}")
        if self.shard < -1:
            raise ValueError(f"shard must be >= -1, got {self.shard}")
        if self.kind in SHARD_FAULTS and self.shard < 0:
            raise ValueError(
                f"shard-level fault {self.kind.value} needs a shard index"
            )


class FaultPlan:
    """A seeded, immutable schedule of faults plus their factories."""

    def __init__(self, specs, *, seed: int = 0):
        self.seed = int(seed)
        self.specs: list[FaultSpec] = sorted(
            specs, key=lambda s: (s.step, s.kind.value)
        )

    # ------------------------------------------------------------------
    @classmethod
    def generate(
        cls,
        *,
        seed: int,
        num_steps: int,
        kinds=None,
        per_kind: int = 1,
    ) -> "FaultPlan":
        """Deterministically place ``per_kind`` faults of each kind on
        steps ``1 .. num_steps - 1`` (step 0 delivers the initial
        snapshot and carries no events).  Defaults to the single-stream
        kinds (``STREAM_FAULTS``); shard-level kinds need a target shard
        and are scheduled by :meth:`generate_cluster` instead."""
        if num_steps < 2:
            raise ValueError("need at least 2 steps to schedule faults")
        if per_kind < 1:
            raise ValueError("per_kind must be >= 1")
        chosen = sorted(kinds or STREAM_FAULTS, key=lambda k: k.value)
        if any(k in SHARD_FAULTS for k in chosen):
            raise ValueError(
                "shard-level kinds need a target shard;"
                " use FaultPlan.generate_cluster"
            )
        specs: list[FaultSpec] = []
        for ki, kind in enumerate(chosen):
            rng = np.random.default_rng([seed, ki])
            for step in rng.integers(1, num_steps, size=per_kind):
                specs.append(FaultSpec(kind, int(step)))
        return cls(specs, seed=seed)

    @classmethod
    def generate_cluster(
        cls,
        *,
        seed: int,
        num_steps: int,
        num_shards: int,
        kinds=None,
        per_shard: int = 1,
    ) -> "FaultPlan":
        """Deterministically schedule shard-level faults so every shard
        receives ``per_shard`` faults of each chosen kind (default: all
        of ``SHARD_FAULTS``, so each shard is crashed, stalled, slowed
        and torn-checkpointed at least once — the chaos-proof campaign
        shape the acceptance criteria ask for)."""
        if num_steps < 2:
            raise ValueError("need at least 2 steps to schedule faults")
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if per_shard < 1:
            raise ValueError("per_shard must be >= 1")
        chosen = sorted(kinds or SHARD_FAULTS, key=lambda k: k.value)
        if any(k not in SHARD_FAULTS for k in chosen):
            raise ValueError(
                "generate_cluster schedules shard-level kinds only"
            )
        specs: list[FaultSpec] = []
        for shard in range(num_shards):
            for ki, kind in enumerate(chosen):
                rng = np.random.default_rng([seed, shard, ki])
                for step in rng.integers(1, num_steps, size=per_shard):
                    specs.append(FaultSpec(kind, int(step), shard))
        return cls(specs, seed=seed)

    # ------------------------------------------------------------------
    def at(self, step: int, kinds=None) -> list[FaultSpec]:
        """Specs scheduled for ``step``, optionally filtered by kind."""
        return [
            s
            for s in self.specs
            if s.step == step and (kinds is None or s.kind in kinds)
        ]

    def event_specs(self, step: int) -> list[FaultSpec]:
        return self.at(step, EVENT_FAULTS)

    def snapshot_specs(self, step: int) -> list[FaultSpec]:
        return self.at(step, SNAPSHOT_FAULTS)

    def engine_specs(self, step: int) -> list[FaultSpec]:
        return self.at(step, ENGINE_FAULTS)

    def shard_specs(self, step: int) -> list[FaultSpec]:
        return self.at(step, SHARD_FAULTS)

    def shards_touched(self) -> frozenset:
        """Shard indices named by at least one shard-level spec."""
        return frozenset(
            s.shard for s in self.specs if s.kind in SHARD_FAULTS
        )

    def storage_failures(self) -> int:
        """Total scheduled transient-storage failures."""
        return sum(1 for s in self.specs if s.kind in STORAGE_FAULTS)

    def counts(self) -> dict[str, int]:
        """Fault tally by kind name (the plan side of the incident
        reconciliation)."""
        out: dict[str, int] = {}
        for s in self.specs:
            out[s.kind.value] = out.get(s.kind.value, 0) + 1
        return out

    def __len__(self) -> int:
        return len(self.specs)

    # ------------------------------------------------------------------
    # fault factories — each returns one concrete poison artefact
    # ------------------------------------------------------------------
    def poison_event(self, spec: FaultSpec, snap: CSRSnapshot) -> UpdateEvent:
        """One event guaranteed to be rejected when validated against the
        state described by ``snap`` (the snapshot the event stream has
        fully evolved to by the time this event is seen)."""
        n = snap.num_vertices
        dim = snap.dim
        kind = spec.kind
        if kind is FaultKind.CORRUPT_EVENT:
            return UpdateEvent(
                UpdateKind.FEATURE_UPDATE,
                n + spec.step,
                np.zeros(dim, dtype=np.float32),
            )
        if kind is FaultKind.UNKNOWN_KIND_EVENT:
            return UpdateEvent("__not_a_kind__", 0)  # type: ignore[arg-type]
        if kind is FaultKind.NAN_FEATURE:
            x = np.zeros(dim, dtype=np.float32)
            x[0] = np.nan
            return UpdateEvent(UpdateKind.FEATURE_UPDATE, 0, x)
        if kind is FaultKind.INF_FEATURE:
            x = np.zeros(dim, dtype=np.float32)
            x[-1] = np.inf
            return UpdateEvent(UpdateKind.FEATURE_UPDATE, 0, x)
        if kind is FaultKind.DUPLICATE_EVENT:
            edges = snap.edge_array()
            if edges.shape[0]:
                s, d = int(edges[0, 0]), int(edges[0, 1])
                return UpdateEvent(UpdateKind.EDGE_INSERT, s, (s, d))
            # edgeless graph: fall back to an out-of-range endpoint,
            # which is rejected unconditionally
            return UpdateEvent(UpdateKind.EDGE_INSERT, 0, (0, n))
        if kind is FaultKind.OUT_OF_ORDER_EVENT:
            missing = self._absent_edge(snap)
            if missing is not None:
                s, d = missing
                return UpdateEvent(UpdateKind.EDGE_DELETE, s, (s, d))
            return UpdateEvent(UpdateKind.EDGE_DELETE, 0, (0, n))
        raise ValueError(f"{kind} is not an event-level fault")

    @staticmethod
    def _absent_edge(snap: CSRSnapshot) -> tuple[int, int] | None:
        """First (src, dst) pair not present in ``snap`` — deleting it
        models an out-of-order delete-before-insert delivery."""
        n = snap.num_vertices
        for s in range(n):
            row = set(snap.neighbors(s).tolist())
            for d in range(n):
                if d not in row:
                    return s, d
        return None

    def corrupt_snapshot(
        self, spec: FaultSpec, snap: CSRSnapshot
    ) -> CSRSnapshot:
        """A torn-write copy of ``snap`` whose CSR arrays are truncated.

        ``copy.copy`` sidesteps ``__post_init__`` — exactly how a torn
        write reaches a consumer without being caught at construction
        time; :func:`repro.resilience.ingest.snapshot_violation` must
        catch it at the ingest boundary instead.
        """
        if spec.kind not in SNAPSHOT_FAULTS:
            raise ValueError(f"{spec.kind} is not a snapshot-level fault")
        bad = copy.copy(snap)
        if snap.num_edges:
            bad.indices = snap.indices[: snap.num_edges // 2].copy()
        else:
            bad.indptr = snap.indptr[:-1].copy()
        return bad

    def violation(self, spec: FaultSpec) -> SanitizerViolation:
        """A synthetic invariant violation, as if the sanitizer tripped
        mid-window."""
        if spec.kind not in ENGINE_FAULTS:
            raise ValueError(f"{spec.kind} is not an engine-level fault")
        return SanitizerViolation(
            "synthetic-fault",
            "injected_faults",
            1,
            "== 0",
            where=f"resilience.faults.step{spec.step}",
        )


class FlakyHBM:
    """Duck-typed HBM front that fails its first ``failures`` requests.

    Wraps a :class:`repro.hardware.memory.HBMModel` (anything with a
    ``cycles(words=..., randoms=...)`` method) and raises
    :class:`TransientStorageError` deterministically, modelling a flaky
    storage backend behind the O-CSR loader.  Pass it to
    :meth:`repro.accel.tagnn.TaGNNSimulator.simulate` via ``hbm=`` and
    wrap the call in :func:`repro.resilience.ingest.with_retry`.
    """

    def __init__(self, inner, *, failures: int = 1):
        if failures < 0:
            raise ValueError(f"failures must be >= 0, got {failures}")
        self.inner = inner
        self.failures = failures
        self.calls = 0

    def cycles(self, *, words: float = 0.0, randoms: float = 0.0) -> float:
        self.calls += 1
        if self.calls <= self.failures:
            raise TransientStorageError(
                f"injected HBM failure on request {self.calls}"
                f" (of {self.failures} scheduled)"
            )
        return self.inner.cycles(words=words, randoms=randoms)
