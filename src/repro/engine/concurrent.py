"""TaGNN-S: the topology-aware concurrent execution engine (software).

This is the paper's approach in software form (evaluated as *TaGNN-S* in
Figs. 8–9):

1. **Window classification** — vertices of a K-snapshot window are split
   into unaffected / stable / affected (:mod:`repro.analysis.classify`)
   and the affected subgraph is extracted by the stable-rooted DFS.
2. **Multi-snapshot GNN** — snapshot 0 of the window is computed once as
   the *representative*; for later snapshots only the per-layer *changed
   sets* are recomputed.  The changed set of layer ``i`` is the closed
   (i-1)-hop neighbourhood of the stable∪affected set over the union
   adjacency: an unaffected vertex's layer-1 output is provably identical
   across the window, but deeper layers see change leaking in one hop per
   layer.  This makes the GNN phase *exact* while loading/computing
   unaffected vertices once per layer, as the paper claims.
3. **Similarity-aware cell skipping** — per consecutive snapshot pair,
   stable/affected vertices are scored with :math:`\\theta`; SKIP rows
   reuse the previous final feature, DELTA rows take the condensed
   partial update, FULL rows run the real cell.  Unaffected vertices are
   skipped directly without scoring (their :math:`\\theta` is exactly 1).

With ``enable_skipping=False`` the engine's outputs are bit-comparable to
the reference engine (a test invariant); with skipping on they differ by
the bounded approximation the accuracy benches quantify.
"""

from __future__ import annotations

import contextlib
import time

import numpy as np

from ..analysis.classify import classify_window
from ..analysis.similarity import similarity_scores
from ..analysis.subgraph import extract_affected_subgraph, union_adjacency
from ..graphs.dynamic import DynamicGraph
from ..graphs.snapshot import CSRSnapshot, aggregate_kernel
from ..models.base import DGNNModel
from ..skipping.delta import DeltaCellCache
from ..skipping.policy import CellUpdateMode, SkippingPolicy, SkipThresholds
from .metrics import ExecutionMetrics
from .reference import EngineResult

__all__ = ["ConcurrentEngine"]

#: EWMA smoothing for the engine's running Condense-Unit sparsity probe
#: (``delta_nnz`` over delta capacity), fed to the planner's profiles.
_DELTA_PROBE_ALPHA = 0.3


class ConcurrentEngine:
    """The TaGNN-S engine.

    Parameters
    ----------
    model:
        Any :class:`DGNNModel`.
    window_size:
        Snapshots processed concurrently (paper default 4).
    thresholds:
        Skipping thresholds; defaults to the Fig. 14(a) optimum.
    epsilon:
        Delta-mode zero threshold fed to the Condense Unit.
    enable_overlap:
        The OADL half (multi-snapshot GNN with changed-set propagation).
        Off = recompute every vertex per snapshot (ablation WO/OADL).
    enable_skipping:
        The ADSC half (similarity-gated cell updates).  Off = full cell
        update everywhere (ablation WO/ADSC) and the engine is exact.
    planner:
        Optional :class:`~repro.adaptive.AdaptivePlanner`.  When set,
        each window is profiled and executed under the planner's
        :class:`~repro.adaptive.ExecutionPlan` — kernel and threshold
        choices per window — with realized latencies fed back online.
    """

    name = "TaGNN-S"

    def __init__(
        self,
        model: DGNNModel,
        *,
        window_size: int = 4,
        thresholds: SkipThresholds | None = None,
        epsilon: float = 1e-3,
        enable_overlap: bool = True,
        enable_skipping: bool = True,
        refresh_each_window: bool = True,
        planner=None,
    ):
        if window_size < 1:
            raise ValueError("window_size must be >= 1")
        self.model = model
        self.window_size = window_size
        self.policy = SkippingPolicy(thresholds)
        self.epsilon = epsilon
        self.enable_overlap = enable_overlap
        self.enable_skipping = enable_skipping
        #: full cell update on the first snapshot of each batch — the
        #: paper's per-batch recalculation that stops error accumulating
        #: over prolonged skipping (ablated by the design benches)
        self.refresh_each_window = refresh_each_window
        self.planner = planner
        #: running Condense-Unit sparsity probe (delta nnz over capacity)
        self._delta_probe = 0.0

    # ------------------------------------------------------------------
    def run(self, graph: DynamicGraph) -> EngineResult:
        n = graph.num_vertices
        m = ExecutionMetrics()
        model = self.model
        state = model.init_state(n)
        # RNN-free models (IdentityCell) have no delta-cache machinery:
        # their "cell update" is free and always exact
        from ..models.rnn import IdentityCell

        cache = (
            None
            if isinstance(model.cell, IdentityCell)
            else DeltaCellCache(model.cell, n)
        )
        outputs: list[np.ndarray] = []
        decisions = []
        classifications = []
        h_prev = np.zeros((n, model.out_dim), dtype=np.float32)
        z_prev: np.ndarray | None = None
        snap_prev: CSRSnapshot | None = None
        first_snapshot = True

        k = self.window_size
        plans = []
        starts = list(range(0, graph.num_snapshots, k))
        for start in starts:
            size = min(k, graph.num_snapshots - start)
            window = graph.window(start, size)
            if hasattr(self.model, "advance_window"):
                self.model.advance_window(start // k)
            cls = classify_window(window)
            plan = self.plan_window(m, window, cls)
            if plan is not None:
                plans.append(plan)
            classifications.append(cls)
            self._account_overhead(
                m, window, self._subgraph_vertices(window, cls, plan)
            )

            base_modes = (m.cells_full, m.cells_delta, m.cells_skipped)
            base_delta_nnz = m.delta_nnz
            t0 = time.perf_counter()  # repro: noqa R001 — planner latency feedback, not simulated time
            with self._plan_context(plan):
                zs = self._gnn_window(m, window, cls)

                for t, snap in enumerate(window):
                    z = zs[t]
                    # The first snapshot of every batch takes the full cell
                    # update: the paper "recalculates similarity scores for
                    # each vertex in the new batch, rather than reusing scores
                    # and skipping decisions" to stop error accumulating over
                    # prolonged skipping — a periodic state refresh is what
                    # bounds the drift (and what keeps Table 5's loss < 1%).
                    h_prev, state = self._rnn_step(
                        m,
                        snap,
                        z,
                        z_prev,
                        snap_prev,
                        state,
                        cache,
                        cls,
                        h_prev,
                        first=first_snapshot
                        or (t == 0 and self.refresh_each_window),
                        decisions=decisions,
                    )
                    outputs.append(h_prev.copy())
                    z_prev, snap_prev = z, snap
                    first_snapshot = False
                    m.snapshots_processed += 1
            if plan is not None:
                elapsed = time.perf_counter() - t0  # repro: noqa R001 — planner latency feedback
                self.planner.observe(plan, elapsed)
            m.record_window_modes(
                m.cells_full - base_modes[0],
                m.cells_delta - base_modes[1],
                m.cells_skipped - base_modes[2],
            )
            self._update_delta_probe(
                m.cells_delta - base_modes[1], m.delta_nnz - base_delta_nnz
            )
            m.windows_processed += 1

        extra = {"decisions": decisions, "classifications": classifications}
        if self.planner is not None:
            extra["plans"] = plans
        return EngineResult(outputs, m, extra=extra)

    # ------------------------------------------------------------------
    # adaptive planning support (repro.adaptive)
    # ------------------------------------------------------------------
    def plan_window(self, m, window, cls):
        """Profile the window and ask the planner for an
        :class:`~repro.adaptive.ExecutionPlan` (None without a planner)."""
        if self.planner is None:
            return None
        from ..adaptive import profile_window

        profile = profile_window(
            window, cls, self.model, delta_nnz_ratio=self._delta_probe
        )
        prev_switches = self.planner.kernel_switches
        plan = self.planner.plan(profile)
        m.windows_planned += 1
        m.plan_kernel_switches += self.planner.kernel_switches - prev_switches
        return plan

    @contextlib.contextmanager
    def _plan_context(self, plan):
        """Apply one plan's kernel + threshold choices for a window.

        ``delta-condensed`` keeps the OADL changed-set path; the two full
        recompute kernels disable overlap and differ only in the
        aggregation kernel (scatter vs dense slots) — all three are
        bit-identical by construction (tests/adaptive).
        """
        if plan is None:
            yield
            return
        from ..adaptive import KernelChoice

        prev_overlap = self.enable_overlap
        prev_policy = self.policy
        self.enable_overlap = plan.kernel is KernelChoice.DELTA_CONDENSED
        self.policy = SkippingPolicy(plan.thresholds)
        try:
            if plan.kernel is KernelChoice.DENSE_GEMM:
                with aggregate_kernel("dense"):
                    yield
            else:
                yield
        finally:
            self.enable_overlap = prev_overlap
            self.policy = prev_policy

    def _subgraph_vertices(self, window, cls, plan) -> int:
        """Affected-subgraph size for overhead accounting.

        The DFS extraction only feeds the OADL changed-set path, so under
        a full-recompute plan it is *skipped entirely* (a real saving the
        planner prices in) and the changed-vertex count stands in for the
        accounting."""
        from ..adaptive import KernelChoice

        if plan is not None and plan.kernel is not KernelChoice.DELTA_CONDENSED:
            return int((cls.labels != 0).sum())
        return int(extract_affected_subgraph(window, cls).num_vertices)

    def _update_delta_probe(self, delta_cells: int, delta_nnz: int) -> None:
        """Refresh the running Condense-Unit sparsity probe from one
        window's delta counters (survivor nnz over delta capacity)."""
        if delta_cells <= 0:
            return
        capacity = delta_cells * max(self.model.out_dim, 1)
        ratio = min(1.0, delta_nnz / capacity)
        self._delta_probe += _DELTA_PROBE_ALPHA * (ratio - self._delta_probe)

    # ------------------------------------------------------------------
    # GNN phase
    # ------------------------------------------------------------------
    def _gnn_window(self, m, window, cls) -> list[np.ndarray]:
        """Multi-snapshot GNN with changed-set propagation (exact)."""
        model = self.model
        if not self.enable_overlap:
            # ablation WO/OADL: every snapshot fully recomputed through
            # the window kernel
            zs = model.gnn_forward_window(window.snapshots)
            for snap in window:
                self._account_full_gnn(m, snap)
            return zs

        # --- representative pass on snapshot 0 of the window -----------
        # For shrinking layers the combine output (y = xW + b) is stashed:
        # it is reusable verbatim at later snapshots for every row whose
        # input did not change — the core OADL saving.
        snap0 = window[0]
        rep_inputs: list[np.ndarray] = [snap0.features]
        rep_combined: list[np.ndarray | None] = []
        h = snap0.features
        for layer in model.gnn.layers:
            if layer.out_dim < layer.in_dim:
                y = layer.combine(h)
                rep_combined.append(y)
                h = layer.act(snap0.aggregate(y))
            else:
                rep_combined.append(None)
                h = layer.forward(snap0, h)
            rep_inputs.append(h)
        self._account_full_gnn(m, snap0)
        zs = [rep_inputs[-1]]

        if window.num_snapshots == 1:
            return zs

        # --- changed-set masks per layer -------------------------------
        changed0 = cls.labels != 0  # stable or affected (VertexClass order)
        u_indptr, u_indices = union_adjacency(window)
        masks = [changed0]
        for _ in range(len(model.gnn.layers) - 1):
            prev = masks[-1]
            grown = prev.copy()
            src = np.repeat(
                np.arange(window.num_vertices, dtype=np.int64),
                np.diff(u_indptr),
            )
            hit = prev[u_indices]
            if hit.any():
                grown[src[hit]] = True
            masks.append(grown)

        # --- later snapshots: recompute only the masked rows -----------
        for t in range(1, window.num_snapshots):
            snap = window[t]
            x = rep_inputs[0].copy()
            diff_rows = np.flatnonzero(
                (snap.features != rep_inputs[0]).any(axis=1)
            )
            x[diff_rows] = snap.features[diff_rows]
            m.feature_words += len(diff_rows) * window.dim  # only churned rows
            in_changed = np.zeros(window.num_vertices, dtype=bool)
            in_changed[diff_rows] = True
            for li, layer in enumerate(model.gnn.layers):
                mask = masks[li]
                out = rep_inputs[li + 1].copy()
                out[mask] = self._layer_rows(
                    m, layer, snap, x, mask, in_changed, rep_combined[li]
                )
                x = out
                in_changed = mask  # next layer's inputs changed on `mask`
            zs.append(x)
        return zs

    def _layer_rows(
        self, m, layer, snap, x, mask, in_changed, rep_y
    ) -> np.ndarray:
        """One GCN layer restricted to ``mask`` rows (exact under the
        mean-normalised aggregation, see :meth:`CSRSnapshot.aggregate`).

        ``in_changed`` marks rows whose *input* differs from the
        representative; only those rows' combine outputs are recomputed —
        the rest reuse ``rep_y``.
        """
        coeff = snap.mean_norm_coeffs()
        src_all = np.repeat(
            np.arange(snap.num_vertices, dtype=np.int64), snap.degrees
        )
        sel = mask[src_all]
        tgt = snap.indices[sel]

        if layer.out_dim < layer.in_dim:
            y = rep_y.copy()
            rows = np.flatnonzero(in_changed)
            y[rows] = x[rows] @ layer.weight + layer.bias
            m.combination_macs += len(rows) * layer.in_dim * layer.out_dim
        else:
            y = x
        out = np.zeros((snap.num_vertices, y.shape[1]), dtype=np.float32)
        np.add.at(out, src_all[sel], y[tgt])
        out[mask] += y[mask]
        out *= coeff[:, None]
        m.aggregation_macs += int(sel.sum()) * y.shape[1]
        m.feature_words += int(sel.sum()) * y.shape[1]  # neighbour gathers
        m.structure_words += int(mask.sum()) + int(sel.sum())

        agg = out[mask]
        if layer.out_dim < layer.in_dim:
            res = agg
        else:
            res = agg @ layer.weight + layer.bias
            m.combination_macs += int(mask.sum()) * layer.in_dim * layer.out_dim
        return layer.act(res)

    def _account_full_gnn(self, m, snap) -> None:
        """Accounting of one full-GNN snapshot pass (the representative,
        or every snapshot when overlap is disabled)."""
        n_present = snap.num_present
        e = snap.num_edges
        m.structure_words += (snap.num_vertices + 1) + e
        for layer in self.model.gnn.layers:
            agg_dim = min(layer.in_dim, layer.out_dim)
            m.feature_words += n_present * layer.in_dim + e * agg_dim
            m.combination_macs += n_present * layer.in_dim * layer.out_dim
            m.aggregation_macs += e * agg_dim
        # weights loaded once per *window*, not per snapshot
        pass

    # ------------------------------------------------------------------
    # RNN phase
    # ------------------------------------------------------------------
    def _rnn_step(
        self,
        m,
        snap,
        z,
        z_prev,
        snap_prev,
        state,
        cache,
        cls,
        h_prev,
        *,
        first: bool,
        decisions: list,
    ):
        model = self.model
        present_rows = np.flatnonzero(snap.present)
        h_out = h_prev.copy()

        if first or not self.enable_skipping or z_prev is None:
            rows = present_rows
            h_rows, st_rows = model.cell_step_rows(z, state, rows, snap)
            h_out[rows] = h_rows
            new_state = _splice_state(state, rows, st_rows)
            if cache is not None:
                cache.refresh(rows, z, model.recurrent_drive(state, snap))
            m.cells_full += len(rows)
            m.cell_macs += len(rows) * model.cell.flops_per_vertex() // 2
            m.output_words += len(rows) * model.out_dim
            return h_out, new_state

        # --- scored set: stable + affected vertices present now ----------
        scored_mask = (cls.labels != 0) & snap.present
        if snap_prev is not None:
            scored_mask &= snap_prev.present  # arrivals have no history
        arrivals = snap.present & ~(
            snap_prev.present if snap_prev is not None else snap.present
        )
        scored = np.flatnonzero(scored_mask)

        # pairwise feature stability between the two snapshots
        feat_stable = (
            (snap.features == snap_prev.features).all(axis=1)
            & snap.present
            & snap_prev.present
        )
        theta = similarity_scores(z_prev, z, snap_prev, snap, scored, feat_stable)
        m.overhead_ops += len(scored) * (z.shape[1] + 8)
        decision = self.policy.decide(scored, theta)
        decisions.append(decision)

        full_rows = decision.rows(CellUpdateMode.FULL)
        full_rows = np.union1d(full_rows, np.flatnonzero(arrivals))
        delta_rows = decision.rows(CellUpdateMode.DELTA)
        skip_rows = decision.rows(CellUpdateMode.SKIP)
        if cache is None:
            # identity cell: the "partial" update is the full (free) one
            full_rows = np.union1d(full_rows, delta_rows)
            delta_rows = np.empty(0, dtype=np.int64)

        new_state = state
        drive = model.recurrent_drive(state, snap)
        if len(full_rows):
            h_rows, st_rows = model.cell_step_rows(z, state, full_rows, snap)
            h_out[full_rows] = h_rows
            new_state = _splice_state(new_state, full_rows, st_rows)
            if cache is not None:
                cache.refresh(full_rows, z, drive)
            m.cells_full += len(full_rows)
            m.cell_macs += len(full_rows) * model.cell.flops_per_vertex() // 2
        if len(delta_rows):
            h_rows, st_rows, packed = cache.partial_step(
                delta_rows, z, state, epsilon=self.epsilon
            )
            h_out[delta_rows] = h_rows
            new_state = _splice_state(new_state, delta_rows, st_rows)
            full_cost = len(delta_rows) * model.cell.flops_per_vertex() // 2
            delta_cost = packed.nnz * model.cell.w_x.shape[1]
            m.cells_delta += len(delta_rows)
            m.delta_nnz += packed.nnz
            m.cell_macs += min(delta_cost, full_cost)
            m.cell_macs_saved += max(full_cost - delta_cost, 0)
        # skip rows + unaffected vertices: reuse previous output and state
        n_skip = len(skip_rows) + int(
            ((cls.labels == 0) & snap.present).sum()
        )
        m.cells_skipped += n_skip
        m.cell_macs_saved += n_skip * model.cell.flops_per_vertex() // 2

        m.output_words += (len(full_rows) + len(delta_rows)) * model.out_dim
        return h_out, new_state

    # ------------------------------------------------------------------
    def _account_overhead(self, m, window, subgraph_vertices: int) -> None:
        """Runtime overhead of the topology analysis itself — the cost
        that makes TaGNN-S only modestly faster than PiPAD (Fig. 8(a))
        and that the accelerator's MSDL pipelines absorb.

        ``subgraph_vertices`` is the affected-subgraph vertex count (or
        the changed-vertex estimate when a plan skipped the DFS)."""
        n = window.num_vertices
        e_total = sum(s.num_edges for s in window)
        # classification: feature compares + fingerprints + scatter
        m.overhead_ops += window.num_snapshots * n * window.dim
        m.overhead_ops += e_total
        # DFS traversal of the union adjacency
        m.overhead_ops += int(subgraph_vertices) + e_total
        # structure reads for the analysis
        m.structure_words += e_total + (n + 1) * window.num_snapshots


def _splice_state(state, rows, row_state):
    """Return a copy of ``state`` with ``rows`` replaced by ``row_state``."""
    new = state.copy()
    for k in vars(row_state):
        if k.startswith("_"):
            continue
        getattr(new, k)[rows] = getattr(row_state, k)
    return new
