"""The reference engine: snapshot-by-snapshot exact DGNN inference.

This is the execution pattern of every prior system in Table 1 (DGL,
PyGT, PiPAD, and the baseline accelerators): each snapshot is processed
in isolation — all features re-fetched, the full GNN recomputed, the full
cell update run — regardless of how much of the graph is unchanged.  Its
outputs are the semantic ground truth; its counters quantify exactly the
redundancy TaGNN removes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..analysis.classify import classify_window
from ..graphs.dynamic import DynamicGraph
from ..models.base import DGNNModel
from .metrics import ExecutionMetrics

__all__ = ["EngineResult", "ReferenceEngine"]


@dataclass
class EngineResult:
    """Outputs plus instrumentation of one engine run."""

    outputs: list[np.ndarray]  # H^t per snapshot
    metrics: ExecutionMetrics
    extra: dict = field(default_factory=dict)


class ReferenceEngine:
    """Exact snapshot-by-snapshot execution with full accounting.

    Parameters
    ----------
    model:
        Any :class:`DGNNModel`.
    window_size:
        Only used for *accounting* (redundancy is defined within a
        window); execution itself is strictly sequential.
    """

    name = "reference"

    def __init__(self, model: DGNNModel, *, window_size: int = 4):
        if window_size < 1:
            raise ValueError("window_size must be >= 1")
        self.model = model
        self.window_size = window_size

    # ------------------------------------------------------------------
    def run(self, graph: DynamicGraph) -> EngineResult:
        """Run inference over every snapshot; returns exact outputs and
        the traffic/compute counters of the conventional pattern."""
        m = ExecutionMetrics()
        n = graph.num_vertices
        state = self.model.init_state(n)
        h_out = np.zeros((n, self.model.out_dim), dtype=np.float32)
        outputs: list[np.ndarray] = []
        # GNN passes run one window at a time through the window kernel;
        # the cell updates stay sequential because each consumes the
        # previous state.
        for start in range(0, len(graph), self.window_size):
            # weight-evolving (RNN-free) models advance per batch
            if hasattr(self.model, "advance_window"):
                self.model.advance_window(start // self.window_size)
            snaps = graph.snapshots[start : start + self.window_size]
            zs = self.model.gnn_forward_window(snaps)
            base_full = m.cells_full
            for snap, z in zip(snaps, zs):
                h, new_state = self.model.cell_step(z, state, snap)
                # absent vertices are not computed: freeze their output
                # and recurrent state (systems do not schedule absent
                # vertices)
                absent = np.flatnonzero(~snap.present)
                if absent.size:
                    h[absent] = h_out[absent]
                    new_state.select_rows(absent, state)
                h_out = h
                state = new_state
                outputs.append(h_out.copy())
                self._account_snapshot(m, snap)
            # conventional pattern: every present vertex takes the full
            # cell update — the trajectory is all-FULL by construction
            m.record_window_modes(m.cells_full - base_full, 0, 0)
        m.snapshots_processed = len(graph)
        self._account_redundancy(m, graph)
        return EngineResult(outputs, m)

    # ------------------------------------------------------------------
    def _account_snapshot(self, m: ExecutionMetrics, snap) -> None:
        """Traffic and compute of one snapshot under the conventional
        pattern: everything loaded, everything computed."""
        n_present = snap.num_present
        e = snap.num_edges
        model = self.model

        # structure: indptr + indices, re-read per snapshot
        m.structure_words += (snap.num_vertices + 1) + e
        # features: per GCN layer, source rows + one gather per edge
        for layer in model.gnn.layers:
            din = layer.in_dim
            agg_dim = min(layer.in_dim, layer.out_dim)
            m.feature_words += n_present * din + e * agg_dim
            m.combination_macs += n_present * din * layer.out_dim
            m.aggregation_macs += e * agg_dim
            m.weight_words += layer.weight.size + layer.bias.size
        # RNN module: inputs are on-chip (streamed from GNN), weights and
        # states move
        m.weight_words += model.cell.w_x.size + model.cell.w_h.size
        m.feature_words += n_present * model.cell.hidden_dim  # prev state
        m.cell_macs += n_present * model.cell.flops_per_vertex() // 2
        m.cells_full += n_present
        # outputs written back
        m.output_words += n_present * model.out_dim

    def _account_redundancy(self, m: ExecutionMetrics, graph: DynamicGraph) -> None:
        """Redundant words: fetches of data whose value was already
        fetched earlier in the same window.

        The conventional pattern re-reads (a) every feature row per
        snapshot although only affected vertices have new versions,
        (b) one target feature per *edge* although a vertex's feature is
        the same for all of its in-edges, and (c) the weights every
        snapshot.  The minimum any system must move per window is one copy
        of each distinct (vertex, version) feature, the structure, and the
        weights once — everything above that is redundant (this is what
        makes the measured useful-data ratios of Fig. 2(c) so low)."""
        k = self.window_size
        model = self.model
        for start in range(0, graph.num_snapshots, k):
            size = min(k, graph.num_snapshots - start)
            window = graph.window(start, size)
            cls = classify_window(window)
            counts = cls.counts()
            n_distinct = (
                counts["unaffected"]
                + counts["stable"]
                + counts["affected"] * size
            )
            weight_words = sum(
                l.weight.size + l.bias.size for l in model.gnn.layers
            ) + model.cell.w_x.size + model.cell.w_h.size
            total_feature = 0
            minimal_feature = 0
            for layer in model.gnn.layers:
                agg_dim = min(layer.in_dim, layer.out_dim)
                for snap in window:
                    total_feature += (
                        snap.num_present * layer.in_dim + snap.num_edges * agg_dim
                    )
                # minimal: each distinct version once per layer
                minimal_feature += n_distinct * layer.in_dim
            total_struct = sum(
                (graph.num_vertices + 1) + s.num_edges for s in window
            )
            minimal_struct = (graph.num_vertices + 1) + max(
                s.num_edges for s in window
            )
            m.redundant_words += max(0, total_feature - minimal_feature)
            m.redundant_words += max(0, total_struct - minimal_struct)
            m.redundant_words += weight_words * (size - 1)
            m.windows_processed += 1
