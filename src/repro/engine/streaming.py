"""Streaming (push-based) DGNN inference.

Production dynamic-graph services do not hold the whole history in
memory: snapshots arrive one at a time and results must come out with
bounded latency.  :class:`StreamingInference` wraps the TaGNN-S engine
in a push API:

- ``push(snapshot)`` appends one snapshot; once a full window has
  accumulated, the window is processed (classification, multi-snapshot
  GNN, similarity-gated cell updates) and the per-snapshot results come
  back;
- ``flush()`` processes a trailing partial window;
- recurrent state, the last GNN output, and weight-evolution state carry
  across windows exactly as in the batch engine — a test invariant is
  that pushing snapshot-by-snapshot produces **the same outputs** as one
  batch run over the whole sequence.

Internally each complete window is re-packed into a ``DynamicGraph`` and
driven through :class:`ConcurrentEngine`'s window path, so all batching
semantics live in exactly one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graphs.dynamic import DynamicGraph
from ..graphs.snapshot import CSRSnapshot
from ..models.base import DGNNModel
from ..skipping.policy import SkipThresholds
from .concurrent import ConcurrentEngine
from .metrics import ExecutionMetrics

__all__ = ["StreamingInference", "StreamResult"]


@dataclass
class StreamResult:
    """Outputs released by one push/flush call."""

    timestamps: list[int]
    outputs: list[np.ndarray]
    metrics: ExecutionMetrics = field(default_factory=ExecutionMetrics)


class StreamingInference:
    """Push-based wrapper around the topology-aware concurrent engine."""

    def __init__(
        self,
        model: DGNNModel,
        *,
        window_size: int = 4,
        thresholds: SkipThresholds | None = None,
        enable_skipping: bool = True,
    ):
        if window_size < 1:
            raise ValueError("window_size must be >= 1")
        self.model = model
        self.window_size = window_size
        self._engine = ConcurrentEngine(
            model,
            window_size=window_size,
            thresholds=thresholds,
            enable_skipping=enable_skipping,
        )
        self._pending: list[CSRSnapshot] = []
        self._timestamp = 0
        self._window_index = 0
        self._metrics = ExecutionMetrics()
        # carried engine state (mirrors ConcurrentEngine.run locals)
        self._state = None
        self._cache = None
        self._h_prev: np.ndarray | None = None
        self._z_prev: np.ndarray | None = None
        self._snap_prev: CSRSnapshot | None = None
        self._first = True

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Snapshots buffered but not yet processed."""
        return len(self._pending)

    @property
    def metrics(self) -> ExecutionMetrics:
        """Aggregate counters over everything processed so far."""
        return self._metrics

    def push(self, snapshot: CSRSnapshot) -> StreamResult | None:
        """Append one snapshot; returns results when a window completes."""
        if self._h_prev is not None and (
            snapshot.num_vertices != len(self._h_prev)
        ):
            raise ValueError("snapshot vertex count changed mid-stream")
        self._pending.append(snapshot)
        if len(self._pending) < self.window_size:
            return None
        return self._process_window()

    def flush(self) -> StreamResult | None:
        """Process a trailing partial window (end of stream)."""
        if not self._pending:
            return None
        return self._process_window()

    # ------------------------------------------------------------------
    def _process_window(self) -> StreamResult:
        from ..analysis.classify import classify_window
        from ..analysis.subgraph import extract_affected_subgraph
        from ..models.rnn import IdentityCell
        from ..skipping.delta import DeltaCellCache

        snaps = self._pending
        self._pending = []
        first_ts = self._timestamp
        window = DynamicGraph(list(snaps), name=f"stream[{first_ts}]")
        for off, s in enumerate(window.snapshots):
            s.timestamp = first_ts + off
        self._timestamp += len(snaps)

        engine = self._engine
        model = self.model
        n = window.num_vertices
        if self._state is None:
            self._state = model.init_state(n)
            self._cache = (
                None
                if isinstance(model.cell, IdentityCell)
                else DeltaCellCache(model.cell, n)
            )
            self._h_prev = np.zeros((n, model.out_dim), dtype=np.float32)

        if hasattr(model, "advance_window"):
            model.advance_window(self._window_index)

        m = ExecutionMetrics()
        cls = classify_window(window)
        subgraph = extract_affected_subgraph(window, cls)
        engine._account_overhead(m, window, subgraph)
        zs = engine._gnn_window(m, window, cls)

        outputs: list[np.ndarray] = []
        decisions: list = []
        for t, snap in enumerate(window):
            self._h_prev, self._state = engine._rnn_step(
                m,
                snap,
                zs[t],
                self._z_prev,
                self._snap_prev,
                self._state,
                self._cache,
                cls,
                self._h_prev,
                first=self._first or (t == 0 and engine.refresh_each_window),
                decisions=decisions,
            )
            outputs.append(self._h_prev.copy())
            self._z_prev, self._snap_prev = zs[t], snap
            self._first = False
            m.snapshots_processed += 1
        m.windows_processed += 1
        self._window_index += 1
        self._metrics = self._metrics.merge(m)
        return StreamResult(
            timestamps=list(range(first_ts, self._timestamp)),
            outputs=outputs,
            metrics=m,
        )
