"""Streaming (push-based) DGNN inference.

Production dynamic-graph services do not hold the whole history in
memory: snapshots arrive one at a time and results must come out with
bounded latency.  :class:`StreamingInference` wraps the TaGNN-S engine
in a push API:

- ``push(snapshot)`` appends one snapshot; once a full window has
  accumulated, the window is processed (classification, multi-snapshot
  GNN, similarity-gated cell updates) and the per-snapshot results come
  back;
- ``flush()`` processes a trailing partial window;
- recurrent state, the last GNN output, and weight-evolution state carry
  across windows exactly as in the batch engine — a test invariant is
  that pushing snapshot-by-snapshot produces **the same outputs** as one
  batch run over the whole sequence.

Internally each complete window is re-packed into a ``DynamicGraph`` and
driven through :class:`ConcurrentEngine`'s window path, so all batching
semantics live in exactly one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graphs.dynamic import DynamicGraph
from ..graphs.snapshot import CSRSnapshot
from ..models.base import DGNNModel
from ..skipping.policy import SkipThresholds
from .concurrent import ConcurrentEngine
from .metrics import ExecutionMetrics

__all__ = ["StreamingInference", "StreamResult"]


@dataclass
class StreamResult:
    """Outputs released by one push/flush call."""

    timestamps: list[int]
    outputs: list[np.ndarray]
    metrics: ExecutionMetrics = field(default_factory=ExecutionMetrics)


class StreamingInference:
    """Push-based wrapper around the topology-aware concurrent engine."""

    def __init__(
        self,
        model: DGNNModel,
        *,
        window_size: int = 4,
        thresholds: SkipThresholds | None = None,
        enable_skipping: bool = True,
        planner=None,
    ):
        if window_size < 1:
            raise ValueError("window_size must be >= 1")
        self.model = model
        self.window_size = window_size
        self._engine = ConcurrentEngine(
            model,
            window_size=window_size,
            thresholds=thresholds,
            enable_skipping=enable_skipping,
            planner=planner,
        )
        self._pending: list[CSRSnapshot] = []
        self._timestamp = 0
        self._window_index = 0
        self._metrics = ExecutionMetrics()
        self._num_vertices: int | None = None  # pinned by the first push
        # carried engine state (mirrors ConcurrentEngine.run locals)
        self._state = None
        self._cache = None
        self._h_prev: np.ndarray | None = None
        self._z_prev: np.ndarray | None = None
        self._snap_prev: CSRSnapshot | None = None
        self._first = True

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Snapshots buffered but not yet processed."""
        return len(self._pending)

    @property
    def metrics(self) -> ExecutionMetrics:
        """Aggregate counters over everything processed so far."""
        return self._metrics

    @property
    def planner(self):
        """The adaptive planner driving this stream (None when static)."""
        return self._engine.planner

    def push(self, snapshot: CSRSnapshot) -> StreamResult | None:
        """Append one snapshot; returns results when a window completes.

        Shape mismatches fail *here* with a clear message rather than as
        a numpy broadcast error deep inside the window processing: the
        feature dimension must match the model's input width and the
        vertex count must equal the first pushed snapshot's.
        """
        if snapshot.dim != self.model.in_dim:
            raise ValueError(
                f"snapshot feature dimension {snapshot.dim} does not match"
                f" model input dimension {self.model.in_dim}"
            )
        if self._num_vertices is None:
            self._num_vertices = snapshot.num_vertices
        elif snapshot.num_vertices != self._num_vertices:
            raise ValueError(
                f"snapshot vertex count changed mid-stream: got"
                f" {snapshot.num_vertices}, stream carries"
                f" {self._num_vertices}"
            )
        self._pending.append(snapshot)
        if len(self._pending) < self.window_size:
            return None
        return self._process_window()

    def flush(self) -> StreamResult | None:
        """Process a trailing partial window (end of stream)."""
        if not self._pending:
            return None
        return self._process_window()

    # ------------------------------------------------------------------
    def _process_window(self) -> StreamResult:
        from ..analysis.classify import classify_window
        from ..models.rnn import IdentityCell
        from ..skipping.delta import DeltaCellCache

        snaps = self._pending
        self._pending = []
        first_ts = self._timestamp
        window = DynamicGraph(list(snaps), name=f"stream[{first_ts}]")
        for off, s in enumerate(window.snapshots):
            s.timestamp = first_ts + off
        self._timestamp += len(snaps)

        engine = self._engine
        model = self.model
        n = window.num_vertices
        if self._state is None:
            self._state = model.init_state(n)
            self._cache = (
                None
                if isinstance(model.cell, IdentityCell)
                else DeltaCellCache(model.cell, n)
            )
            self._h_prev = np.zeros((n, model.out_dim), dtype=np.float32)

        if hasattr(model, "advance_window"):
            model.advance_window(self._window_index)

        m = ExecutionMetrics()
        cls = classify_window(window)
        plan = engine.plan_window(m, window, cls)

        # Drift probe: replay this window from the same carried state at
        # the *default* thresholds, roll back, then run the tuned plan —
        # the relative divergence between the two output sets is exactly
        # the quantity the drift budget bounds.  While the controller is
        # still at the defaults the divergence is zero by construction,
        # so the probe is free — that zero is what bootstraps the
        # aggressiveness ramp.
        probe = plan is not None and engine.planner.wants_probe()
        replay = probe and plan.thresholds != SkipThresholds()
        baseline: list[np.ndarray] | None = None
        if replay:
            from dataclasses import replace as _dc_replace

            carry = self.carry_state()
            baseline = self._execute_window(
                window,
                cls,
                _dc_replace(plan, thresholds=SkipThresholds()),
                ExecutionMetrics(),
                observe=False,
            )
            self.restore_carry(carry)

        outputs = self._execute_window(window, cls, plan, m, observe=True)

        if probe:
            if replay:
                from ..adaptive import relative_drift

                drift = relative_drift(baseline, outputs)
            else:
                drift = 0.0
            engine.planner.observe_drift(drift)
            m.drift_probes += 1

        m.windows_processed += 1
        self._window_index += 1
        self._metrics = self._metrics.merge(m)
        return StreamResult(
            timestamps=list(range(first_ts, self._timestamp)),
            outputs=outputs,
            metrics=m,
        )

    def _execute_window(
        self,
        window: DynamicGraph,
        cls,
        plan,
        m: ExecutionMetrics,
        *,
        observe: bool,
    ) -> list[np.ndarray]:
        """Run one window under ``plan`` (or the static configuration
        when ``plan`` is None), committing the carried stream state."""
        import time

        engine = self._engine
        engine._account_overhead(
            m, window, engine._subgraph_vertices(window, cls, plan)
        )
        base_modes = (m.cells_full, m.cells_delta, m.cells_skipped)
        base_delta_nnz = m.delta_nnz
        outputs: list[np.ndarray] = []
        decisions: list = []
        t0 = time.perf_counter()  # repro: noqa R001 — planner latency feedback, not simulated time
        with engine._plan_context(plan):
            zs = engine._gnn_window(m, window, cls)
            for t, snap in enumerate(window):
                self._h_prev, self._state = engine._rnn_step(
                    m,
                    snap,
                    zs[t],
                    self._z_prev,
                    self._snap_prev,
                    self._state,
                    self._cache,
                    cls,
                    self._h_prev,
                    first=self._first
                    or (t == 0 and engine.refresh_each_window),
                    decisions=decisions,
                )
                outputs.append(self._h_prev.copy())
                self._z_prev, self._snap_prev = zs[t], snap
                self._first = False
                m.snapshots_processed += 1
        if observe and plan is not None:
            elapsed = time.perf_counter() - t0  # repro: noqa R001 — planner latency feedback
            engine.planner.observe(plan, elapsed)
        m.record_window_modes(
            m.cells_full - base_modes[0],
            m.cells_delta - base_modes[1],
            m.cells_skipped - base_modes[2],
        )
        engine._update_delta_probe(
            m.cells_delta - base_modes[1], m.delta_nnz - base_delta_nnz
        )
        return outputs

    # ------------------------------------------------------------------
    # carry-state checkpointing (repro.resilience.checkpoint)
    # ------------------------------------------------------------------
    def carry_state(self) -> dict:
        """Deep copy of every value carried across windows.

        The returned mapping is fully detached from the live stream
        (all arrays copied), so :meth:`restore_carry` rolls back to
        exactly this point no matter what ran in between.  The keys are
        the contract :mod:`repro.resilience.checkpoint` serialises.
        """
        cache = None
        if self._cache is not None:
            cache = {
                "zx": self._cache.zx.copy(),
                "zh": self._cache.zh.copy(),
                "z_input": self._cache.z_input.copy(),
            }
        return {
            "window_size": self.window_size,
            "pending": [s.copy() for s in self._pending],
            "timestamp": self._timestamp,
            "window_index": self._window_index,
            "metrics": ExecutionMetrics(**self._metrics.as_dict()),
            "state": None if self._state is None else self._state.copy(),
            "cache": cache,
            "h_prev": None if self._h_prev is None else self._h_prev.copy(),
            "z_prev": None if self._z_prev is None else self._z_prev.copy(),
            "snap_prev": (
                None if self._snap_prev is None else self._snap_prev.copy()
            ),
            "first": self._first,
            "num_vertices": self._num_vertices,
        }

    def restore_carry(self, carry: dict) -> None:
        """Install a carry mapping produced by :meth:`carry_state`.

        The stream resumes bit-identically from the captured boundary.
        The carry is copied in, so one checkpoint can be restored any
        number of times.  The model/config must match the one the carry
        was captured from.
        """
        from ..models.rnn import IdentityCell
        from ..skipping.delta import DeltaCellCache

        if carry["window_size"] != self.window_size:
            raise ValueError(
                f"checkpoint window_size {carry['window_size']} does not"
                f" match stream window_size {self.window_size}"
            )
        h_prev = carry["h_prev"]
        if h_prev is not None and h_prev.shape[1] != self.model.out_dim:
            raise ValueError(
                f"checkpoint output width {h_prev.shape[1]} does not"
                f" match model out_dim {self.model.out_dim}"
            )
        self._pending = [s.copy() for s in carry["pending"]]
        self._timestamp = carry["timestamp"]
        self._window_index = carry["window_index"]
        self._metrics = ExecutionMetrics(**carry["metrics"].as_dict())
        state = carry["state"]
        self._state = None if state is None else state.copy()
        cache = carry["cache"]
        if cache is None:
            self._cache = None
        else:
            if isinstance(self.model.cell, IdentityCell):
                raise ValueError(
                    "checkpoint carries a delta cache but the model has"
                    " an identity cell"
                )
            rebuilt = DeltaCellCache(self.model.cell, cache["zx"].shape[0])
            rebuilt.zx[...] = cache["zx"]
            rebuilt.zh[...] = cache["zh"]
            rebuilt.z_input[...] = cache["z_input"]
            self._cache = rebuilt
        self._h_prev = None if h_prev is None else h_prev.copy()
        z_prev = carry["z_prev"]
        self._z_prev = None if z_prev is None else z_prev.copy()
        snap_prev = carry["snap_prev"]
        self._snap_prev = None if snap_prev is None else snap_prev.copy()
        self._first = carry["first"]
        self._num_vertices = carry["num_vertices"]

    # ------------------------------------------------------------------
    # graceful degradation (repro.resilience.supervisor)
    # ------------------------------------------------------------------
    def adopt_window(
        self,
        snapshots: list[CSRSnapshot],
        outputs: list[np.ndarray],
        state,
        z_last: np.ndarray,
        metrics: ExecutionMetrics,
    ) -> StreamResult:
        """Install externally-computed results for the pending window.

        The resilience supervisor calls this after re-executing a failed
        window on the exact reference path: the stream adopts the given
        outputs/state as if it had processed the window itself, clears
        the pending buffer, and refreshes the delta cache so later
        windows' DELTA-mode updates read consistent pre-activations.
        """
        from ..models.rnn import IdentityCell
        from ..skipping.delta import DeltaCellCache

        if not snapshots or len(snapshots) != len(outputs):
            raise ValueError("adopt_window needs one output per snapshot")
        first_ts = self._timestamp
        last = snapshots[-1]
        self._pending = []
        self._timestamp += len(snapshots)
        self._window_index += 1
        self._state = state
        self._h_prev = outputs[-1].copy()
        self._z_prev = z_last
        self._snap_prev = last
        self._first = False
        self._num_vertices = last.num_vertices
        if self._cache is None and not isinstance(
            self.model.cell, IdentityCell
        ):
            self._cache = DeltaCellCache(self.model.cell, last.num_vertices)
        if self._cache is not None:
            rows = np.flatnonzero(last.present)
            self._cache.refresh(
                rows, z_last, self.model.recurrent_drive(state, last)
            )
        self._metrics = self._metrics.merge(metrics)
        return StreamResult(
            timestamps=list(range(first_ts, self._timestamp)),
            outputs=outputs,
            metrics=metrics,
        )
