"""Execution engines: the conventional reference and TaGNN-S."""

from .concurrent import ConcurrentEngine
from .metrics import WORD_BYTES, ExecutionMetrics
from .reference import EngineResult, ReferenceEngine
from .streaming import StreamingInference, StreamResult

__all__ = [
    "ConcurrentEngine",
    "ExecutionMetrics",
    "WORD_BYTES",
    "EngineResult",
    "ReferenceEngine",
    "StreamingInference",
    "StreamResult",
]
