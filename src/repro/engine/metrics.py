"""Execution instrumentation shared by every engine and platform model.

Engines count the quantities the paper's evaluation is built on:

* words moved off-chip, split by class (features / structure / weights /
  outputs) — Fig. 2(c)'s useful-data ratio and Fig. 8(b)'s access
  breakdown are functions of these;
* *redundant* words: reads whose value was already read earlier in the
  same window (re-fetching an unaffected vertex's features is the paper's
  canonical example);
* MACs, split by phase (aggregation / combination / cell update) —
  Fig. 2(a)'s time breakdown comes from these plus the memory counters;
* cell-update mode counts (full / delta / skip) and the runtime overhead
  of the topology analysis itself (Fig. 8(a)'s "runtime overhead" bar).

All counters are plain integers in *words* (4 bytes) and *MACs* so
platform cost models can convert them to seconds/joules with their own
bandwidth/compute/energy constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

__all__ = ["ExecutionMetrics", "SCALAR_FIELDS", "WORD_BYTES"]

WORD_BYTES = 4

#: Scalar (int) counter fields — everything except the per-window lists.
#: Serialisers (repro.resilience.checkpoint) iterate this instead of
#: ``fields()`` so the list-valued trajectory fields get special casing.
SCALAR_FIELDS: tuple[str, ...] = ()  # filled in after the dataclass below


@dataclass
class ExecutionMetrics:
    """Counter bundle for one engine run."""

    # --- off-chip traffic (words) ------------------------------------
    feature_words: int = 0
    structure_words: int = 0
    weight_words: int = 0
    output_words: int = 0
    redundant_words: int = 0  # subset of the above that re-read known data

    # --- compute (MACs) ------------------------------------------------
    aggregation_macs: int = 0
    combination_macs: int = 0
    cell_macs: int = 0
    cell_macs_saved: int = 0  # avoided by skip/delta modes
    overhead_ops: int = 0  # classification / traversal / similarity work

    # --- cell-update modes ----------------------------------------------
    cells_full: int = 0
    cells_delta: int = 0
    cells_skipped: int = 0
    #: Condense-Unit output size: total surviving non-zeros across every
    #: DELTA-mode partial update (the planner's delta-sparsity probe).
    delta_nnz: int = 0

    # --- per-window trajectory (one entry per processed window) ---------
    #: ``(full, delta, skip)`` cell-update counts of each window, in
    #: processing order — the single source of truth for planner
    #: decisions and Fig-14-style sensitivity sweeps.  ``merge``
    #: concatenates trajectories in argument order.
    window_modes: list = field(default_factory=list)

    # --- bookkeeping ---------------------------------------------------
    snapshots_processed: int = 0
    windows_processed: int = 0

    # --- resilience (repro.resilience) ---------------------------------
    incidents: int = 0  # anomalies the supervisor absorbed
    retries: int = 0  # transient-storage retry attempts
    retry_attempts: int = 0  # total call attempts made under with_retry
    retry_backoff_ns: int = 0  # virtual backoff scheduled by with_retry (ns)
    fallback_windows: int = 0  # windows degraded to the reference engine
    dead_letter_events: int = 0  # poison events/snapshots dead-lettered
    checkpoints_taken: int = 0  # carry-state checkpoints captured
    restores: int = 0  # carry-state rollbacks after a fault

    # --- sharded serving (repro.serving) ---------------------------------
    shed_events: int = 0  # pushes refused by admission control
    stale_serves: int = 0  # queries answered with stale shard rows
    shard_restarts: int = 0  # shard workers restarted by the supervisor
    boundary_words: int = 0  # cross-shard boundary feature re-fetches

    # --- adaptive execution (repro.adaptive) -----------------------------
    windows_planned: int = 0  # windows executed under a planner decision
    plan_kernel_switches: int = 0  # windows whose kernel differed from prior
    drift_probes: int = 0  # exact-replay drift verifications run

    # ------------------------------------------------------------------
    @property
    def total_words(self) -> int:
        """All off-chip words moved."""
        return (
            self.feature_words
            + self.structure_words
            + self.weight_words
            + self.output_words
        )

    @property
    def total_bytes(self) -> int:
        return self.total_words * WORD_BYTES

    @property
    def total_macs(self) -> int:
        return self.aggregation_macs + self.combination_macs + self.cell_macs

    def useful_ratio(self) -> float:
        """Fraction of fetched data that was not redundant (Fig. 2(c))."""
        if self.total_words == 0:
            return 1.0
        return 1.0 - self.redundant_words / self.total_words

    def skip_ratio(self) -> float:
        """Fraction of cell updates avoided entirely."""
        total = self.cells_full + self.cells_delta + self.cells_skipped
        return self.cells_skipped / total if total else 0.0

    def breakdown(self) -> dict[str, int]:
        """Phase-level MAC breakdown used by the Fig. 2(a) bench."""
        return {
            "aggregation": self.aggregation_macs,
            "combination": self.combination_macs,
            "cell_update": self.cell_macs,
            "overhead": self.overhead_ops,
        }

    # ------------------------------------------------------------------
    # per-window trajectory
    # ------------------------------------------------------------------
    def record_window_modes(self, full: int, delta: int, skip: int) -> None:
        """Append one window's cell-update mode counts (engines call this
        once per processed window, after the window's snapshots ran)."""
        self.window_modes.append((int(full), int(delta), int(skip)))

    def per_window_modes(self) -> list[dict[str, int]]:
        """The trajectory as dicts — sensitivity sweeps read this."""
        return [
            {"full": f, "delta": d, "skip": s}
            for f, d, s in self.window_modes
        ]

    # ------------------------------------------------------------------
    def merge(self, other: "ExecutionMetrics") -> "ExecutionMetrics":
        """Element-wise sum; per-window trajectories concatenate in
        argument order (combining windows or datasets)."""
        out = ExecutionMetrics()
        for f in fields(ExecutionMetrics):
            setattr(out, f.name, getattr(self, f.name) + getattr(other, f.name))
        return out

    def as_dict(self) -> dict:
        """Field mapping; list-valued fields come back as fresh copies so
        ``ExecutionMetrics(**m.as_dict())`` never aliases ``m``."""
        out = {}
        for f in fields(ExecutionMetrics):
            value = getattr(self, f.name)
            out[f.name] = list(value) if isinstance(value, list) else value
        return out


SCALAR_FIELDS = tuple(
    f.name for f in fields(ExecutionMetrics) if f.type == "int"
)
