"""TaGNN reproduction: topology-aware dynamic graph neural network
acceleration (SC '25), reimplemented as a pure-Python library.

Subpackages
-----------
``repro.graphs``
    Dynamic-graph substrate: CSR snapshots, synthetic dataset generators
    mirroring the paper's Table 2, update streams.
``repro.formats``
    Multi-snapshot storage: per-snapshot CSR, O-CSR, Packed Memory Array.
``repro.models``
    GCN layers, LSTM/GRU cells, the CD-GCN / GC-LSTM / T-GCN zoo, and the
    teacher-label + ridge-readout accuracy protocol.
``repro.analysis``
    Vertex classification, affected-subgraph extraction, similarity score.
``repro.skipping``
    Similarity-aware cell skipping plus the prior-work RNN approximations.
``repro.engine``
    The conventional reference engine and the TaGNN-S concurrent engine.
``repro.hardware``
    Memory, pipeline, compute-unit, and energy models.
``repro.accel``
    The TaGNN accelerator simulator and every comparison platform.
``repro.resilience``
    Fault injection, guarded ingestion, checkpoint/replay, and graceful
    degradation for the streaming serving path.
``repro.bench``
    The memoised experiment harness driving the per-figure benchmarks.

Quickstart::

    from repro.graphs import load_dataset
    from repro.models import make_model
    from repro.engine import ConcurrentEngine
    from repro.accel import TaGNNSimulator

    graph = load_dataset("GT", num_snapshots=8)
    model = make_model("T-GCN", graph.dim, 32)
    result = ConcurrentEngine(model).run(graph)          # TaGNN-S
    report = TaGNNSimulator().simulate(model, graph)     # the accelerator
"""

__version__ = "1.0.0"

__all__ = [
    "graphs",
    "formats",
    "models",
    "analysis",
    "skipping",
    "engine",
    "hardware",
    "accel",
    "resilience",
    "bench",
]
