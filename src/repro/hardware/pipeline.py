"""Generic hardware-pipeline cycle modelling.

TaGNN is built from deep pipelines (the MSDL's 6-stage loader, the
5-stage TFSM traversal, the SCU's multi-stage similarity datapath).  The
standard throughput model applies: a pipeline with per-item stage costs
:math:`c_1..c_s` processes :math:`n` items in

.. math:: \\text{fill} + (n - 1)\\cdot II,\\qquad
          II = \\max_i c_i,\\ \\text{fill} = \\sum_i c_i

Replicated stages (the paper replicates *Fetch_Neighbors* and
*Fetch_Features* "to balance the pipeline design") divide their per-item
cost by the replication factor.  ``overlap`` composes coarse phases that
run in dataflow style (producer streams into consumer).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PipelineStage", "Pipeline", "overlap", "serial"]


@dataclass(frozen=True)
class PipelineStage:
    """One pipeline stage.

    ``cycles_per_item`` is the stage's cost for a single item;
    ``replication`` parallel copies divide the *effective* initiation
    cost (the paper's balanced-pipeline trick).
    """

    name: str
    cycles_per_item: float
    replication: int = 1

    def __post_init__(self) -> None:
        if self.cycles_per_item < 0:
            raise ValueError("stage cost must be non-negative")
        if self.replication < 1:
            raise ValueError("replication must be >= 1")

    @property
    def effective_cycles(self) -> float:
        return self.cycles_per_item / self.replication


class Pipeline:
    """A linear pipeline of stages."""

    def __init__(self, name: str, stages: list[PipelineStage]):
        if not stages:
            raise ValueError("a pipeline needs at least one stage")
        self.name = name
        self.stages = list(stages)

    @property
    def initiation_interval(self) -> float:
        """Cycles between successive item completions (the bottleneck
        stage's effective cost)."""
        return max(s.effective_cycles for s in self.stages)

    @property
    def fill_latency(self) -> float:
        """Cycles for the first item to traverse every stage."""
        return sum(s.effective_cycles for s in self.stages)

    def cycles(self, num_items: int) -> float:
        """Total cycles to stream ``num_items`` through the pipeline."""
        if num_items < 0:
            raise ValueError("num_items must be non-negative")
        if num_items == 0:
            return 0.0
        return self.fill_latency + (num_items - 1) * self.initiation_interval

    def bottleneck(self) -> PipelineStage:
        """The stage limiting throughput."""
        return max(self.stages, key=lambda s: s.effective_cycles)

    def utilization(self, num_items: int) -> float:
        """Fraction of stage-cycles doing useful work while processing
        ``num_items`` (tends to 1 for long streams)."""
        if num_items == 0:
            return 0.0
        busy = num_items * self.fill_latency
        span = self.cycles(num_items) * len(self.stages) * self.initiation_interval
        return min(1.0, busy / span) if span else 0.0


def overlap(*phase_cycles: float) -> float:
    """Dataflow composition: phases stream into each other, so the
    overlapped span is the slowest phase (producer/consumer fully
    pipelined — the paper's 'dataflow style of parallelism')."""
    return max(phase_cycles) if phase_cycles else 0.0


def serial(*phase_cycles: float) -> float:
    """Sequential composition (no overlap) — what snapshot-by-snapshot
    baselines do between GNN and RNN phases."""
    return float(sum(phase_cycles))
