"""Energy model shared by every platform in the evaluation.

All platforms are charged through the same event taxonomy — MACs, SRAM
words, DRAM/HBM words, plus static leakage over the run's span — with
per-platform constants from published estimates (Horowitz ISSCC'14
energy tables, HBM2 vendor figures, and the device TDPs the paper's
Section 5 cites).  Energy *ratios* between platforms, which is what
Fig. 11 reports, are then driven by the same counters as the latency
results.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["EnergyModel", "FPGA_U280", "ASIC_1GHZ", "GPU_A100", "CPU_XEON"]


@dataclass(frozen=True)
class EnergyModel:
    """Per-event energies (picojoules) plus static power (watts)."""

    name: str
    mac_pj: float
    sram_word_pj: float
    dram_word_pj: float
    static_watts: float
    frequency_mhz: float

    def __post_init__(self) -> None:
        if (self.mac_pj < 0 or self.sram_word_pj < 0
                or self.dram_word_pj < 0 or self.static_watts < 0):
            raise ValueError("per-event energies must be >= 0")
        if self.frequency_mhz <= 0:
            raise ValueError("frequency_mhz must be positive")

    def dynamic_joules(
        self, *, macs: float = 0, sram_words: float = 0, dram_words: float = 0
    ) -> float:
        """Dynamic (switching) energy of the counted events."""
        return (
            macs * self.mac_pj
            + sram_words * self.sram_word_pj
            + dram_words * self.dram_word_pj
        ) * 1e-12

    def static_joules(self, cycles: float) -> float:
        """Leakage/idle energy over a span of cycles at this clock."""
        seconds = cycles / (self.frequency_mhz * 1e6)
        return self.static_watts * seconds

    def total_joules(
        self,
        *,
        macs: float = 0,
        sram_words: float = 0,
        dram_words: float = 0,
        cycles: float = 0,
    ) -> float:
        return self.dynamic_joules(
            macs=macs, sram_words=sram_words, dram_words=dram_words
        ) + self.static_joules(cycles)

    def seconds(self, cycles: float) -> float:
        return cycles / (self.frequency_mhz * 1e6)


#: Alveo U280 fabric at the paper's 225 MHz: DSP MAC ≈ 4 pJ, BRAM/URAM
#: word ≈ 1 pJ, HBM2 ≈ 160 pJ/word (≈ 5 pJ/bit), ≈ 10 W static.
FPGA_U280 = EnergyModel(
    name="fpga-u280",
    mac_pj=4.0,
    sram_word_pj=1.0,
    dram_word_pj=160.0,
    static_watts=28.0,
    frequency_mhz=225.0,
)

#: The 1 GHz ASIC baselines (E-DGCN, Cambricon-DG): denser logic, lower
#: per-op energy, lower static power.
ASIC_1GHZ = EnergyModel(
    name="asic-1ghz",
    mac_pj=1.5,
    sram_word_pj=0.6,
    dram_word_pj=160.0,
    static_watts=38.0,
    frequency_mhz=1000.0,
)

#: NVIDIA A100: high per-op efficiency on paper, but low achieved
#: utilisation (the paper measures <= 22.3% SM utilisation for DGNNs) and
#: a large idle/static share of its 400 W TDP.
GPU_A100 = EnergyModel(
    name="gpu-a100",
    mac_pj=18.0,
    sram_word_pj=4.0,
    dram_word_pj=150.0,
    static_watts=38.0,
    frequency_mhz=1410.0,
)

#: Intel Xeon 6151 (3.0 GHz): general-purpose overhead per op, DDR4
#: access energy, high package static power.
CPU_XEON = EnergyModel(
    name="cpu-xeon",
    mac_pj=180.0,
    sram_word_pj=12.0,
    dram_word_pj=330.0,
    static_watts=40.0,
    frequency_mhz=3000.0,
)
