"""Compute-unit models: MAC arrays, adder trees, similarity cores.

These are throughput models: each unit converts an operation count into
busy cycles given its parallel width and clock.  The DCU composes a MAC
array (CPE — combination) with adder trees (APE — aggregation); the
Adaptive RNN Unit composes similarity cores with MAC arrays.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["MACArray", "AdderTree", "SimilarityCore"]


@dataclass(frozen=True)
class MACArray:
    """An array of multiply-accumulate units (the CPE fabric).

    ``num_macs`` MACs retire that many multiply-accumulates per cycle at
    full utilisation; ``efficiency`` derates for drain/stall effects.
    """

    num_macs: int
    efficiency: float = 0.9

    def __post_init__(self) -> None:
        if self.num_macs < 1:
            raise ValueError("need at least one MAC")
        if not 0 < self.efficiency <= 1:
            raise ValueError("efficiency in (0, 1]")

    def cycles(self, macs: float) -> float:
        """Busy cycles to retire ``macs`` multiply-accumulates."""
        if macs < 0:
            raise ValueError("macs must be non-negative")
        return macs / (self.num_macs * self.efficiency)

    def matmul_cycles(self, n: int, k: int, m: int) -> float:
        """Cycles for an (n,k) @ (k,m) row-wise matrix multiply."""
        return self.cycles(n * k * m)


@dataclass(frozen=True)
class AdderTree:
    """A parallel adder tree (the APE fabric).

    ``width`` leaves sum ``width`` operands per invocation with
    ``ceil(log2 width)`` pipeline depth; ``count`` trees run in parallel.
    """

    width: int = 16
    count: int = 128

    def __post_init__(self) -> None:
        if self.width < 2 or self.count < 1:
            raise ValueError("width >= 2 and count >= 1 required")

    @property
    def depth(self) -> int:
        return int(math.ceil(math.log2(self.width)))

    def cycles(self, additions: float) -> float:
        """Busy cycles to perform ``additions`` scalar additions (the
        trees are pipelined, so throughput is width*count adds/cycle)."""
        if additions < 0:
            raise ValueError("additions must be non-negative")
        per_cycle = self.width * self.count
        if additions == 0:
            return 0.0
        return additions / per_cycle + self.depth  # + drain of the tree

    def aggregate_cycles(self, num_edges: int, dim: int) -> float:
        """Cycles to aggregate ``num_edges`` neighbour vectors of width
        ``dim`` (one add per edge per component)."""
        return self.cycles(float(num_edges) * dim)


@dataclass(frozen=True)
class SimilarityCore:
    """One Similarity Core Unit (SCU) of the Adaptive RNN Unit.

    Its multi-stage datapath (dot product → normalisation → topological
    overlap → stability weighting, Section 4.2) is fully pipelined: a
    vertex with feature width ``dim`` and ``common`` common neighbours
    occupies the unit for ``dim/lanes`` cycles for the vector stages and
    ``common/lanes`` for the set-intersection stage, whichever dominates.
    """

    lanes: int = 16
    count: int = 8

    def __post_init__(self) -> None:
        if self.lanes < 1 or self.count < 1:
            raise ValueError("lanes >= 1 and count >= 1 required")

    def vertex_cycles(self, dim: int, common_neighbors: float) -> float:
        """Pipeline occupancy of one scored vertex on one core."""
        vec = dim / self.lanes
        topo = common_neighbors / self.lanes
        return max(vec, topo) + 4  # +4: norm/divide/weight pipeline depth

    def cycles(self, num_vertices: int, dim: int, avg_common: float) -> float:
        """Busy cycles for a batch of scored vertices across all cores."""
        if num_vertices < 0:
            raise ValueError("num_vertices must be non-negative")
        if num_vertices == 0:
            return 0.0
        per_vertex_ii = max(dim, avg_common) / self.lanes + 1
        return (num_vertices / self.count) * per_vertex_ii + 4
