"""Memory models: off-chip HBM and on-chip ping-pong buffers.

The cycle model splits off-chip traffic into latency-bound *random*
accesses and bandwidth-bound *streamed* words — the same two currencies
as :mod:`repro.formats.base`, so format-level and accelerator-level
numbers compose.  On-chip buffers track capacity, spill when a working
set exceeds them (spills become extra HBM traffic), and model the
paper's ping-pong double-buffering (load of tile *i+1* overlaps compute
of tile *i*).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..check.sanitizer import (
    check_buffer,
    check_hbm_request,
    sanitizer_enabled,
)

__all__ = ["HBMModel", "OnChipBuffer", "MemorySubsystem", "WORD_BYTES"]

WORD_BYTES = 4


@dataclass
class HBMModel:
    """Off-chip memory characterised by bandwidth and random latency.

    Parameters
    ----------
    bandwidth_gbs:
        Sustained sequential bandwidth in GB/s (Table 4 gives every
        accelerator 256 GB/s HBM 2.0).
    frequency_mhz:
        The consuming fabric's clock — cycles are denominated in it.
    random_latency_ns:
        Full row-activation latency charged per random access.
    """

    bandwidth_gbs: float = 256.0
    frequency_mhz: float = 225.0
    random_latency_ns: float = 45.0

    def __post_init__(self) -> None:
        if self.bandwidth_gbs <= 0 or self.frequency_mhz <= 0:
            raise ValueError("bandwidth and frequency must be positive")
        if self.random_latency_ns < 0:
            raise ValueError("random_latency_ns must be >= 0")

    @property
    def bytes_per_cycle(self) -> float:
        """Streamed bytes deliverable per fabric cycle."""
        return self.bandwidth_gbs * 1e9 / (self.frequency_mhz * 1e6)

    @property
    def words_per_cycle(self) -> float:
        return self.bytes_per_cycle / WORD_BYTES

    @property
    def random_latency_cycles(self) -> float:
        return self.random_latency_ns * 1e-9 * self.frequency_mhz * 1e6

    def cycles(self, *, words: float = 0, randoms: float = 0) -> float:
        """Cycles to move ``words`` streamed words plus ``randoms``
        latency-bound accesses (latency overlaps bandwidth only up to the
        number of independent banks; we charge them additively, the
        conservative choice all platforms share)."""
        if sanitizer_enabled():
            check_hbm_request(words, randoms)
        return words / self.words_per_cycle + randoms * self.random_latency_cycles


@dataclass
class OnChipBuffer:
    """A named on-chip SRAM buffer with optional ping-pong operation."""

    name: str
    capacity_bytes: int
    ping_pong: bool = True
    reads: int = 0
    writes: int = 0
    spill_words: int = 0

    def __post_init__(self) -> None:
        if self.capacity_bytes < 1:
            raise ValueError("capacity_bytes must be >= 1")
        if self.reads < 0 or self.writes < 0 or self.spill_words < 0:
            raise ValueError("access counters must start >= 0")

    @property
    def usable_bytes(self) -> int:
        """Ping-pong halves the capacity visible to one phase."""
        return self.capacity_bytes // 2 if self.ping_pong else self.capacity_bytes

    def fits(self, words: int) -> bool:
        need_bytes = words * WORD_BYTES
        return need_bytes <= self.usable_bytes

    def access(self, *, reads: int = 0, writes: int = 0) -> None:
        """Record SRAM accesses (energy accounting)."""
        self.reads += reads
        self.writes += writes
        if sanitizer_enabled():
            check_buffer(self)

    def load_tile(self, words: int) -> int:
        """Stage a working set of ``words``; returns the words that spill
        to HBM because they do not fit."""
        cap_words = self.usable_bytes // WORD_BYTES
        spill = max(0, words - cap_words)
        self.spill_words += spill
        self.writes += min(words, cap_words)
        if sanitizer_enabled():
            check_buffer(self)
        return spill

    def reset_counters(self) -> None:
        self.reads = self.writes = self.spill_words = 0


@dataclass
class MemorySubsystem:
    """The TaGNN on-chip buffer inventory (Table 4) plus the HBM port."""

    hbm: HBMModel = field(default_factory=HBMModel)
    buffers: dict[str, OnChipBuffer] = field(default_factory=dict)

    @classmethod
    def tagnn_default(cls, hbm: HBMModel | None = None) -> "MemorySubsystem":
        """Buffer sizes exactly as listed in Table 4 for TaGNN."""
        sizes = {
            "feature_memory": 2 * 1024 * 1024,
            "task_fifo": 256 * 1024,
            "intermediate": 128 * 1024,
            "ocsr_table": 1024 * 1024,
            "structure_memory": 512 * 1024,
            "output_buffer": 128 * 1024,
        }
        return cls(
            hbm=hbm or HBMModel(),
            buffers={k: OnChipBuffer(k, v) for k, v in sizes.items()},
        )

    def total_sram_bytes(self) -> int:
        return sum(b.capacity_bytes for b in self.buffers.values())

    def total_sram_accesses(self) -> int:
        return sum(b.reads + b.writes for b in self.buffers.values())

    def total_spill_words(self) -> int:
        return sum(b.spill_words for b in self.buffers.values())

    def reset_counters(self) -> None:
        for b in self.buffers.values():
            b.reset_counters()
