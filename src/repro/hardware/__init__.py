"""Hardware substrate: memory models, pipelines, compute units, energy."""

from .energy import ASIC_1GHZ, CPU_XEON, FPGA_U280, GPU_A100, EnergyModel
from .memory import WORD_BYTES, HBMModel, MemorySubsystem, OnChipBuffer
from .pipeline import Pipeline, PipelineStage, overlap, serial
from .units import AdderTree, MACArray, SimilarityCore

__all__ = [
    "EnergyModel",
    "FPGA_U280",
    "ASIC_1GHZ",
    "GPU_A100",
    "CPU_XEON",
    "HBMModel",
    "MemorySubsystem",
    "OnChipBuffer",
    "WORD_BYTES",
    "Pipeline",
    "PipelineStage",
    "overlap",
    "serial",
    "AdderTree",
    "MACArray",
    "SimilarityCore",
]
