"""The planner's output: one :class:`ExecutionPlan` per window.

A plan is a *complete, auditable* decision record: the three choices
(storage format, propagation kernel, skip thresholds), the dataflow hint
for the cycle simulator, the cost model's expectations for every
candidate it rejected, and human-readable reasons.  The engines execute
plans; they never decide.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..skipping.policy import SkipThresholds

__all__ = ["ExecutionPlan", "KernelChoice", "StorageChoice"]


class KernelChoice(str, enum.Enum):
    """Propagation kernel alternatives — all bit-identical by
    construction (same additions, same order; see tests/adaptive)."""

    #: OADL changed-set propagation: snapshot 0 computed once as the
    #: representative, later snapshots recompute only the per-layer
    #: changed sets (wins when the window is mostly unaffected).
    DELTA_CONDENSED = "delta-condensed"
    #: Full per-snapshot recompute through the CSR scatter kernel
    #: (wins when churn is high and masking overhead is wasted work).
    BATCHED_SPMM = "batched-spmm"
    #: Full recompute through the padded dense-slot kernel (regular
    #: access; wins on small, degree-regular, dense windows).
    DENSE_GEMM = "dense-gemm"


class StorageChoice(str, enum.Enum):
    """Multi-snapshot storage formats (keys of ``repro.formats.FORMATS``)."""

    DENSE = "DENSE"
    CSR = "CSR"
    OCSR = "O-CSR"
    PMA = "PMA"


@dataclass(frozen=True)
class ExecutionPlan:
    """One window's execution decision (immutable once emitted)."""

    kernel: KernelChoice
    storage: StorageChoice
    thresholds: SkipThresholds
    #: GSPM dataflow hint for the cycle simulator
    #: ("range" | "balanced" | "locality").
    partition_strategy: str = "locality"
    #: cost-model expectation (seconds) for every kernel candidate —
    #: the chosen kernel minimises this after online refinement.
    expected_kernel_seconds: dict = field(default_factory=dict)
    #: modeled scan cycles for every storage candidate.
    expected_storage_cycles: dict = field(default_factory=dict)
    reasons: tuple = ()

    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        return {
            "kernel": self.kernel.value,
            "storage": self.storage.value,
            "theta_s": self.thresholds.theta_s,
            "theta_e": self.thresholds.theta_e,
            "partition_strategy": self.partition_strategy,
            "expected_kernel_seconds": {
                k: round(v, 9)
                for k, v in self.expected_kernel_seconds.items()
            },
            "expected_storage_cycles": {
                k: round(v, 3)
                for k, v in self.expected_storage_cycles.items()
            },
        }

    def explain(self) -> str:
        """Human-readable audit trail (``repro plan --explain``)."""
        lines = [
            f"kernel    : {self.kernel.value}",
            f"storage   : {self.storage.value}",
            f"thresholds: theta_s={self.thresholds.theta_s:+.2f}"
            f" theta_e={self.thresholds.theta_e:+.2f}",
            f"dataflow  : {self.partition_strategy}",
        ]
        if self.expected_kernel_seconds:
            ranked = sorted(
                self.expected_kernel_seconds.items(), key=lambda kv: kv[1]
            )
            lines.append("kernel expectations (s): " + ", ".join(
                f"{k}={v:.2e}" for k, v in ranked
            ))
        if self.expected_storage_cycles:
            ranked = sorted(
                self.expected_storage_cycles.items(), key=lambda kv: kv[1]
            )
            lines.append("storage scan (cycles): " + ", ".join(
                f"{k}={v:,.0f}" for k, v in ranked
            ))
        for r in self.reasons:
            lines.append(f"  - {r}")
        return "\n".join(lines)
