"""Cheap per-window workload measurement.

Everything in a :class:`WindowProfile` is either already computed by the
engine (the window classification, the Condense-Unit ``delta_nnz``
counter) or derivable in O(n + E) vectorised passes — profiling must
cost a negligible fraction of the window it describes, or the planner
eats its own win.  No wall clocks here: profiles are pure functions of
the data, so planning decisions are reproducible for fixed inputs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.classify import WindowClassification
from ..graphs.dynamic import DynamicGraph
from ..models.base import DGNNModel

__all__ = ["WindowProfile", "profile_window"]

#: Feature-sparsity probe reads at most this many rows (strided sample).
_SPARSITY_SAMPLE_ROWS = 256


@dataclass(frozen=True)
class WindowProfile:
    """Measured shape of one window's workload."""

    num_vertices: int
    num_snapshots: int
    dim: int
    edges_total: int  # sum of directed edges over the window
    edges_first: int  # edges of the representative snapshot
    max_degree: int  # max out-degree across the window
    degree_cv: float  # coefficient of variation of degrees (skew)
    unaffected_frac: float
    stable_frac: float
    affected_frac: float
    feature_density: float  # non-zero fraction of sampled feature rows
    delta_nnz_ratio: float  # Condense-Unit survivors / delta capacity
    #: (in_dim, out_dim) of every GNN layer — the cost model prices MACs
    layer_dims: tuple[tuple[int, int], ...]
    cell_flops_per_vertex: int

    # ------------------------------------------------------------------
    @property
    def changed_frac(self) -> float:
        """Fraction of vertices needing per-snapshot recomputation."""
        return self.stable_frac + self.affected_frac

    @property
    def avg_degree(self) -> float:
        if self.num_vertices == 0:
            return 0.0
        return self.edges_total / (self.num_vertices * self.num_snapshots)

    @property
    def subgraph_density(self) -> float:
        """Edge density of the affected region (edges over the changed
        vertex set's dense capacity) — the planner's dense-vs-sparse
        signal."""
        changed = self.changed_frac * self.num_vertices
        if changed < 1.0:
            return 0.0
        cap = changed * changed
        return min(1.0, (self.edges_total / self.num_snapshots) / cap)

    def as_dict(self) -> dict:
        return {
            "num_vertices": self.num_vertices,
            "num_snapshots": self.num_snapshots,
            "dim": self.dim,
            "edges_total": self.edges_total,
            "max_degree": self.max_degree,
            "degree_cv": round(self.degree_cv, 4),
            "unaffected_frac": round(self.unaffected_frac, 4),
            "stable_frac": round(self.stable_frac, 4),
            "affected_frac": round(self.affected_frac, 4),
            "feature_density": round(self.feature_density, 4),
            "delta_nnz_ratio": round(self.delta_nnz_ratio, 4),
            "subgraph_density": round(self.subgraph_density, 6),
        }


def profile_window(
    window: DynamicGraph,
    cls: WindowClassification,
    model: DGNNModel,
    *,
    delta_nnz_ratio: float = 0.0,
) -> WindowProfile:
    """Measure one window into a :class:`WindowProfile`.

    ``cls`` is the classification the engine computed anyway;
    ``delta_nnz_ratio`` is the caller's running Condense-Unit probe
    (``ExecutionMetrics.delta_nnz`` over delta capacity) — the planner
    carries it across windows as an EWMA.
    """
    n = window.num_vertices
    snaps = window.snapshots
    edges = [s.num_edges for s in snaps]
    degs = snaps[0].degrees
    max_degree = max(int(s.degrees.max()) if s.num_edges else 0 for s in snaps)
    mean_deg = float(degs.mean()) if n else 0.0
    degree_cv = float(degs.std() / mean_deg) if mean_deg > 0 else 0.0

    counts = cls.counts()
    denom = max(n, 1)

    feats = snaps[0].features
    stride = max(1, n // _SPARSITY_SAMPLE_ROWS)
    sample = feats[::stride]
    feature_density = (
        float(np.count_nonzero(sample)) / sample.size if sample.size else 0.0
    )

    return WindowProfile(
        num_vertices=n,
        num_snapshots=len(snaps),
        dim=window.dim,
        edges_total=int(sum(edges)),
        edges_first=int(edges[0]),
        max_degree=max_degree,
        degree_cv=degree_cv,
        unaffected_frac=counts["unaffected"] / denom,
        stable_frac=counts["stable"] / denom,
        affected_frac=counts["affected"] / denom,
        feature_density=feature_density,
        delta_nnz_ratio=float(delta_nnz_ratio),
        layer_dims=tuple(
            (layer.in_dim, layer.out_dim) for layer in model.gnn.layers
        ),
        cell_flops_per_vertex=int(model.cell.flops_per_vertex()),
    )
