"""Offline calibration: micro-benchmark the PR-6 kernels into a table.

``calibrate_cost_model`` times the primitive operations the cost model
prices — scatter aggregation, dense-slot aggregation, dense combination,
cell-style flops, window classification, affected-subgraph extraction —
on synthetic seeded inputs, and returns a :class:`CalibrationTable`
whose per-unit constants reflect *this* machine.  The bench harness runs
it once per perf session (``repro perf --adaptive``); everything else
falls back to the baked defaults.

This module deliberately reads wall clocks: calibration measures real
latency.  Each read carries an R001 suppression because the ``adaptive``
package sits inside the determinism-gated core — the suppressions are
audited in docs/static_analysis.md.
"""

from __future__ import annotations

import time

import numpy as np

from ..graphs.dynamic import DynamicGraph
from ..graphs.snapshot import CSRSnapshot
from .costmodel import CalibrationTable

__all__ = ["calibrate_cost_model"]


def _best_seconds(fn, repeats: int) -> float:
    """Minimum wall time of ``repeats`` runs (min rejects scheduler noise
    better than mean for micro-benchmarks)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()  # repro: noqa R001 — calibration measures wall latency by design
        fn()
        dt = time.perf_counter() - t0  # repro: noqa R001 — calibration measures wall latency by design
        best = min(best, dt)
    return best


def _synthetic_window(rng, n: int, avg_degree: int, dim: int) -> DynamicGraph:
    """Two-snapshot window with a perturbed second snapshot, so the
    classification and subgraph passes see realistic mixed classes."""
    m = n * avg_degree // 2
    edges = rng.integers(0, n, size=(m, 2), dtype=np.int64)
    feats = rng.standard_normal((n, dim)).astype(np.float32)
    s0 = CSRSnapshot.from_edges(n, edges, feats.copy(), timestamp=0)
    flips = rng.integers(0, n, size=(max(1, m // 20), 2), dtype=np.int64)
    feats2 = feats.copy()
    rows = rng.integers(0, n, size=max(1, n // 20))
    feats2[rows] += rng.standard_normal((rows.size, dim)).astype(np.float32)
    s1 = CSRSnapshot.from_edges(
        n, np.concatenate([edges, flips]), feats2, timestamp=1
    )
    return DynamicGraph([s0, s1], name="calibration")


def calibrate_cost_model(
    *,
    seed: int = 7,
    num_vertices: int = 2048,
    avg_degree: int = 8,
    dim: int = 32,
    repeats: int = 3,
) -> CalibrationTable:
    """Measure per-unit kernel costs on the current machine.

    Synthetic inputs are seeded, so the *workload* is reproducible; the
    measured seconds of course are not — they are the whole point.
    """
    from ..analysis.classify import classify_window
    from ..analysis.subgraph import extract_affected_subgraph

    rng = np.random.default_rng(seed)
    window = _synthetic_window(rng, num_vertices, avg_degree, dim)
    snap = window.snapshots[0]
    x = snap.features
    n = num_vertices
    edges = snap.num_edges

    # -- aggregation kernels ------------------------------------------------
    scatter = _best_seconds(lambda: snap.aggregate(x, kernel="scatter"), repeats)
    scatter_unit = scatter / max(edges * dim, 1)

    dense = _best_seconds(lambda: snap.aggregate(x, kernel="dense"), repeats)
    slots = n * max(int(snap.degrees.max()), 1)
    dense_unit = dense / max(slots * dim, 1)

    # -- combination (dense MAC) -------------------------------------------
    w = rng.standard_normal((dim, dim)).astype(np.float32)
    combine = _best_seconds(lambda: x @ w, repeats)
    combine_unit = combine / max(n * dim * dim, 1)

    # -- cell-style flops (matmul + elementwise nonlinearity) --------------
    h = rng.standard_normal((n, dim)).astype(np.float32)
    cell = _best_seconds(lambda: np.tanh(x @ w + h), repeats)
    cell_unit = cell / max(n * (dim * dim + 2 * dim), 1)

    # -- window passes ------------------------------------------------------
    classify = _best_seconds(lambda: classify_window(window), repeats)
    classify_unit = classify / max(n * window.num_snapshots, 1)

    cls = classify_window(window)
    subgraph = _best_seconds(
        lambda: extract_affected_subgraph(window, cls), repeats
    )
    subgraph_unit = subgraph / max(edges + n, 1)

    # -- changed-set masking ------------------------------------------------
    mask = np.zeros(n, dtype=bool)
    mask[rng.integers(0, n, size=n // 4)] = True
    masking = _best_seconds(lambda: np.flatnonzero(mask), repeats)
    mask_unit = masking / max(n, 1)

    defaults = CalibrationTable()
    return CalibrationTable(
        scatter_seconds_per_edge_dim=scatter_unit,
        dense_seconds_per_slot_dim=dense_unit,
        combine_seconds_per_mac=combine_unit,
        cell_seconds_per_flop=cell_unit,
        classify_seconds_per_vertex=classify_unit,
        subgraph_seconds_per_edge=subgraph_unit,
        mask_seconds_per_vertex=mask_unit,
        window_fixed_seconds=defaults.window_fixed_seconds,
        source="calibrated",
    )
