"""Calibrated cost model behind the adaptive planner.

Two halves, matching the two decision axes that need pricing:

* **kernel seconds** — closed-form operation counts from a
  :class:`~repro.adaptive.profile.WindowProfile` (edges × dims for
  aggregation, MACs for combination, flops for the RNN cell, plus the
  classification / subgraph-extraction overheads each kernel does or
  does not pay), scaled by per-unit constants in a
  :class:`CalibrationTable`.  The table defaults are baked from offline
  micro-benchmarks of the PR-6 kernels (see
  :func:`~repro.adaptive.calibrate.calibrate_cost_model`, which re-bakes
  them on the current machine) and are *refined online*: observed window
  latencies feed an exponentially-weighted moving average per kernel,
  and the planner trusts the EWMA over the prediction once one exists.

* **storage cycles** — closed-form mirrors of the formats'
  ``scan_cost()`` accounting under the shared
  ``RANDOM_ACCESS_CYCLES`` / ``WORDS_PER_CYCLE`` constants of
  :mod:`repro.formats.base`, so format-level and planner-level numbers
  are commensurable without materialising four storage objects per
  window.

The model predicts *costs only* — it can never affect results.  Kernel
and format alternatives are bit-identical by construction; a wrong
prediction costs time, not correctness.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..formats.base import RANDOM_ACCESS_CYCLES, WORDS_PER_CYCLE
from .plan import KernelChoice, StorageChoice
from .profile import WindowProfile

__all__ = ["CalibrationTable", "CostModel"]


@dataclass(frozen=True)
class CalibrationTable:
    """Per-unit seconds for the primitive operations of the PR-6 kernels.

    Defaults are offline micro-benchmark medians (vectorised NumPy on the
    reference container); :func:`calibrate_cost_model` replaces them with
    measurements from the current machine.
    """

    #: scatter aggregation: one gather+add per (edge, feature) pair.
    scatter_seconds_per_edge_dim: float = 2.4e-10
    #: dense-slot aggregation: one padded MAC per (vertex, slot, feature).
    dense_seconds_per_slot_dim: float = 1.1e-10
    #: layer combination: one MAC of the dense ``x @ W``.
    combine_seconds_per_mac: float = 1.6e-11
    #: RNN cell update: one flop of the cell's per-vertex count.
    cell_seconds_per_flop: float = 2.5e-11
    #: window classification: per vertex per snapshot (fingerprints,
    #: row compares, feature compares).
    classify_seconds_per_vertex: float = 1.1e-8
    #: affected-subgraph extraction: per (edge + vertex) of the first
    #: snapshot (union adjacency + reach pass) — only paid by kernels
    #: that consume the subgraph.
    subgraph_seconds_per_edge: float = 6.0e-9
    #: changed-set masking / task regeneration per vertex per snapshot —
    #: only paid by the delta-condensed (OADL) kernel.
    mask_seconds_per_vertex: float = 6.0e-9
    #: fixed per-window dispatch overhead.
    window_fixed_seconds: float = 1.0e-4
    #: provenance of the constants ("default" | "calibrated").
    source: str = "default"

    def with_source(self, source: str) -> "CalibrationTable":
        return replace(self, source=source)


class CostModel:
    """Predicts per-window kernel seconds and storage scan cycles.

    ``observe()`` folds realized window latencies into a per-kernel EWMA;
    ``kernel_seconds()`` returns the EWMA when available (online
    refinement) and the closed-form prediction otherwise.
    """

    def __init__(
        self,
        table: CalibrationTable | None = None,
        *,
        ewma_alpha: float = 0.3,
    ):
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        self.table = table or CalibrationTable()
        self.ewma_alpha = ewma_alpha
        self._observed: dict[str, float] = {}
        self._observations: dict[str, int] = {}

    # ------------------------------------------------------------------
    # kernel axis (seconds)
    # ------------------------------------------------------------------
    def predict_kernel_seconds(
        self, profile: WindowProfile, kernel: KernelChoice
    ) -> float:
        """Closed-form window latency for one kernel choice."""
        t = self.table
        n = profile.num_vertices
        K = profile.num_snapshots
        E = profile.edges_total
        agg_dims = sum(i for i, _ in profile.layer_dims)
        macs = sum(i * o for i, o in profile.layer_dims)

        # classification runs regardless of kernel (the skip policy needs
        # it); the cell phase is also kernel-independent.
        seconds = t.window_fixed_seconds
        seconds += t.classify_seconds_per_vertex * n * K
        seconds += t.cell_seconds_per_flop * profile.cell_flops_per_vertex * n * K

        if kernel is KernelChoice.DELTA_CONDENSED:
            # OADL: the representative snapshot pays the full GNN, the
            # remaining K-1 snapshots recompute only changed rows — plus
            # per-snapshot changed-set masking, plus the affected-subgraph
            # extraction that feeds the changed sets.
            changed = max(profile.changed_frac, 1.0 / max(n, 1))
            full = (
                t.scatter_seconds_per_edge_dim * profile.edges_first * agg_dims
                + t.combine_seconds_per_mac * n * macs
            )
            incremental = (K - 1) * changed * (
                t.scatter_seconds_per_edge_dim * (E / K) * agg_dims
                + t.combine_seconds_per_mac * n * macs
            )
            seconds += full + incremental
            seconds += t.mask_seconds_per_vertex * n * K
            seconds += t.subgraph_seconds_per_edge * (E / K + n)
        elif kernel is KernelChoice.BATCHED_SPMM:
            seconds += t.scatter_seconds_per_edge_dim * E * agg_dims
            seconds += t.combine_seconds_per_mac * n * macs * K
        elif kernel is KernelChoice.DENSE_GEMM:
            slots = n * max(profile.max_degree, 1)
            seconds += t.dense_seconds_per_slot_dim * slots * agg_dims * K
            seconds += t.combine_seconds_per_mac * n * macs * K
        else:  # pragma: no cover - enum is closed
            raise ValueError(f"unknown kernel {kernel!r}")
        return seconds

    def observe(self, kernel: KernelChoice, seconds: float) -> None:
        """Fold one realized window latency into the kernel's EWMA."""
        key = kernel.value
        prev = self._observed.get(key)
        if prev is None:
            self._observed[key] = float(seconds)
        else:
            a = self.ewma_alpha
            self._observed[key] = a * float(seconds) + (1.0 - a) * prev
        self._observations[key] = self._observations.get(key, 0) + 1

    def observed_seconds(self, kernel: KernelChoice) -> float | None:
        return self._observed.get(kernel.value)

    def observation_count(self, kernel: KernelChoice) -> int:
        return self._observations.get(kernel.value, 0)

    def kernel_seconds(
        self, profile: WindowProfile, kernel: KernelChoice
    ) -> float:
        """EWMA-refined estimate: observed latency when the kernel has
        run at least once, the closed-form prediction otherwise."""
        observed = self._observed.get(kernel.value)
        if observed is not None:
            return observed
        return self.predict_kernel_seconds(profile, kernel)

    # ------------------------------------------------------------------
    # storage axis (cycles)
    # ------------------------------------------------------------------
    def predict_storage_cycles(
        self, profile: WindowProfile, storage: StorageChoice
    ) -> float:
        """Closed-form mirror of each format's ``scan_cost()`` over the
        affected-window selection described by ``profile``."""
        n = max(profile.num_vertices, 1)
        K = max(profile.num_snapshots, 1)
        d = max(profile.dim, 1)
        churn = min(1.0, max(profile.changed_frac, 1.0 / n))
        sources = max(1.0, churn * n)
        # selection keeps edges incident to changed sources
        e_sel = max(1.0, profile.edges_total * churn)
        touched = min(float(n), sources * (1.0 + profile.avg_degree))
        # distinct feature versions: snapshot 0 plus churn-driven updates
        versions = touched * (1.0 + profile.affected_frac * (K - 1))

        if storage is StorageChoice.DENSE:
            randoms = 2.0
            words = (K * sources * n + 31) // 32 + K * touched * d
        elif storage is StorageChoice.CSR:
            # one row open per (source, snapshot); per-snapshot feature
            # rows are duplicated (no version sharing).
            randoms = K * sources + K * touched
            words = e_sel + K * touched * d
        elif storage is StorageChoice.OCSR:
            # overlapped rows: one open per source, features deduplicated
            # into versions.
            randoms = sources + touched
            words = e_sel + sources * K + versions * d
        elif storage is StorageChoice.PMA:
            # gapped segments stream ~1.3x the payload; feature rows
            # deduplicated like O-CSR but one extra open per source for
            # the PMA index.
            randoms = 2.0 * sources + touched
            words = 1.3 * e_sel + versions * d
        else:  # pragma: no cover - enum is closed
            raise ValueError(f"unknown storage {storage!r}")
        return randoms * RANDOM_ACCESS_CYCLES + words / WORDS_PER_CYCLE

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Serializable view of the model's online state (for benches)."""
        return {
            "table_source": self.table.source,
            "ewma_alpha": self.ewma_alpha,
            "observed_seconds": dict(self._observed),
            "observations": dict(self._observations),
        }
