"""The per-window execution planner.

:class:`AdaptivePlanner` turns a :class:`WindowProfile` into an
:class:`ExecutionPlan`:

* **kernel** — argmin of the cost model's EWMA-refined per-kernel
  seconds, with optimistic exploration: a kernel that has never run and
  whose *predicted* cost is within ``explore_margin`` of the best gets
  one shot, so online refinement has data for every plausible candidate.
* **storage** — argmin of the modeled scan cycles (a pure cost decision;
  all formats hold identical content).
* **thresholds** — :math:`(\\theta_s, \\theta_e)` interpolated between
  the paper's defaults and the configured aggressive bounds by an
  *aggressiveness* scalar ``a ∈ [0, 1]``.  ``a`` moves under a
  drift-probe controller: the engine periodically replays a window at
  the default thresholds (via carry-state checkpoint/rollback) and
  reports the relative output divergence; drift comfortably under the
  budget raises ``a``, drift over budget slashes it.  The budget is a
  hard configuration knob — auto-tuning can never push divergence past
  it unnoticed, because the probes that raise ``a`` are the same
  mechanism that measures the divergence.
* **dataflow** — a partition-strategy hint for the cycle simulator
  (skewed degree distributions want load-balanced partitions; mostly
  quiet windows keep locality).

The planner is deliberately *stateful across windows* (EWMA costs,
exploration history, aggressiveness) and deliberately *stateless within
one* — ``plan()`` is a pure function of the profile and the accumulated
statistics, so a plan can be recomputed and explained offline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..check.shapes import contract
from ..skipping.policy import SkipThresholds
from .costmodel import CostModel
from .plan import ExecutionPlan, KernelChoice, StorageChoice
from .profile import WindowProfile

__all__ = ["AdaptiveConfig", "AdaptivePlanner", "PlanRecord", "relative_drift"]

_DEFAULTS = SkipThresholds()


@contract("_, _ -> float")
def relative_drift(baseline: list, outputs: list) -> float:
    """Relative L1 divergence between two output trajectories — the
    quantity the drift budget bounds (tuned vs default-threshold run of
    the *same* window from the *same* carried state)."""
    num = 0.0
    den = 0.0
    for a, b in zip(baseline, outputs):
        num += float(np.abs(np.asarray(a) - np.asarray(b)).sum())
        den += float(np.abs(np.asarray(a)).sum())
    if den == 0.0:
        return 0.0 if num == 0.0 else float("inf")
    return num / den


@dataclass(frozen=True)
class AdaptiveConfig:
    """Planner knobs; everything defaults to the safe/productive middle."""

    #: master switches per decision axis
    choose_kernel: bool = True
    choose_storage: bool = True
    tune_thresholds: bool = True
    #: hard bound on relative output divergence vs the default-threshold
    #: pipeline (measured by drift probes; see :meth:`AdaptivePlanner.observe_drift`)
    drift_budget: float = 0.02
    #: probes run at exponentially-spaced planner windows (2, 4, 8, ...)
    #: up to this many — overhead decays to zero on long streams
    max_probes: int = 6
    #: EWMA smoothing for observed kernel latencies
    ewma_alpha: float = 0.3
    #: an under-observed kernel is tried when predicted within this
    #: margin of the best candidate
    explore_margin: float = 0.25
    #: observed-latency samples required per candidate before the EWMA is
    #: trusted exclusively (one sample can be a cold-start outlier)
    explore_min_obs: int = 2
    #: aggressive ends of the threshold interpolation (defaults are the
    #: paper's Fig. 14(a) optimum, these are the far ends the controller
    #: may approach at a = 1)
    theta_e_min: float = 0.2
    theta_s_min: float = -0.8
    #: controller step size for the aggressiveness scalar
    aggressiveness_step: float = 0.25

    def __post_init__(self) -> None:
        if self.drift_budget < 0.0:
            raise ValueError(f"drift_budget must be >= 0, got {self.drift_budget}")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}")
        if self.explore_margin < 0.0:
            raise ValueError("explore_margin must be >= 0")
        if self.explore_min_obs < 0:
            raise ValueError("explore_min_obs must be >= 0")
        if not -1.0 <= self.theta_s_min <= _DEFAULTS.theta_s:
            raise ValueError(
                f"theta_s_min must lie in [-1, {_DEFAULTS.theta_s}],"
                f" got {self.theta_s_min}"
            )
        if not _DEFAULTS.theta_e >= self.theta_e_min >= -1.0:
            raise ValueError(
                f"theta_e_min must lie in [-1, {_DEFAULTS.theta_e}],"
                f" got {self.theta_e_min}"
            )
        if self.max_probes < 0:
            raise ValueError("max_probes must be >= 0")


@dataclass
class PlanRecord:
    """One planned window: the decision, its inputs, and what happened."""

    window_index: int
    plan: ExecutionPlan
    profile: WindowProfile
    observed_seconds: float | None = None
    drift: float | None = None


class AdaptivePlanner:
    """Stateful per-window planner (share one instance per stream/run)."""

    def __init__(
        self,
        config: AdaptiveConfig | None = None,
        cost_model: CostModel | None = None,
    ):
        self.config = config or AdaptiveConfig()
        self.cost_model = cost_model or CostModel(
            ewma_alpha=self.config.ewma_alpha
        )
        self.records: list[PlanRecord] = []
        self.kernel_switches = 0
        self.max_observed_drift = 0.0
        self._window_index = 0
        self._last_kernel: KernelChoice | None = None
        self._aggressiveness = 0.0
        self._probes_done = 0

    # ------------------------------------------------------------------
    # threshold controller
    # ------------------------------------------------------------------
    @property
    def aggressiveness(self) -> float:
        return self._aggressiveness

    @property
    def probes_done(self) -> int:
        return self._probes_done

    def thresholds(self) -> SkipThresholds:
        """Current auto-tuned thresholds: defaults at a = 0, the
        configured aggressive bounds at a = 1."""
        if not self.config.tune_thresholds:
            return _DEFAULTS
        a = self._aggressiveness
        return SkipThresholds(
            theta_s=_DEFAULTS.theta_s
            + a * (self.config.theta_s_min - _DEFAULTS.theta_s),
            theta_e=_DEFAULTS.theta_e
            + a * (self.config.theta_e_min - _DEFAULTS.theta_e),
        )

    def wants_probe(self) -> bool:
        """True when the window just planned should be drift-probed
        (call after :meth:`plan`).

        Probes sit at exponentially-spaced planned-window counts
        (2, 4, 8, …): early windows establish whether aggression is
        safe, and the probe overhead (one extra window execution each)
        decays to zero on long streams.
        """
        if not self.config.tune_thresholds:
            return False
        if self._probes_done >= self.config.max_probes:
            return False
        return self._window_index >= 2 ** (self._probes_done + 1)

    def observe_drift(self, drift: float) -> None:
        """Feed one probe's measured divergence into the controller."""
        self._probes_done += 1
        drift = float(drift)
        self.max_observed_drift = max(self.max_observed_drift, drift)
        if self.records:
            self.records[-1].drift = drift
        cfg = self.config
        if drift > cfg.drift_budget:
            # over budget: retreat hard — halve, then step down
            self._aggressiveness = max(
                0.0, self._aggressiveness / 2.0 - cfg.aggressiveness_step
            )
        elif drift <= 0.5 * cfg.drift_budget and cfg.drift_budget > 0.0:
            # a zero budget means "never leave the defaults": the
            # bootstrap probe's free 0.0 must not count as headroom
            self._aggressiveness = min(
                1.0, self._aggressiveness + cfg.aggressiveness_step
            )
        # drift in (budget/2, budget]: hold position

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def plan(self, profile: WindowProfile) -> ExecutionPlan:
        cfg = self.config
        model = self.cost_model
        reasons: list[str] = []

        kernel_costs = {
            k.value: model.kernel_seconds(profile, k) for k in KernelChoice
        }
        if cfg.choose_kernel:
            best = min(KernelChoice, key=lambda k: kernel_costs[k.value])
            kernel = best
            # optimistic exploration: give near-best kernels a few
            # observed windows each so one cold-start sample can't bury
            # a candidate forever
            bar = kernel_costs[best.value] * (1.0 + cfg.explore_margin)
            for cand in sorted(
                KernelChoice, key=lambda k: model.observation_count(k)
            ):
                if (
                    model.observation_count(cand) < cfg.explore_min_obs
                    and kernel_costs[cand.value] <= bar
                    and cand is not best
                ):
                    kernel = cand
                    reasons.append(
                        f"exploring kernel {cand.value}"
                        f" ({model.observation_count(cand)} observations,"
                        f" predicted within {cfg.explore_margin:.0%} of best)"
                    )
                    break
            else:
                src = (
                    "observed EWMA"
                    if model.observed_seconds(kernel) is not None
                    else "calibrated prediction"
                )
                reasons.append(f"kernel {kernel.value} minimises {src}")
        else:
            kernel = KernelChoice.DELTA_CONDENSED
            reasons.append("kernel choice disabled: static delta-condensed")

        storage_costs = {
            s.value: model.predict_storage_cycles(profile, s)
            for s in StorageChoice
        }
        if cfg.choose_storage:
            storage = min(StorageChoice, key=lambda s: storage_costs[s.value])
            reasons.append(
                f"storage {storage.value} minimises modeled scan cycles"
            )
        else:
            storage = StorageChoice.OCSR
            reasons.append("storage choice disabled: static O-CSR")

        thresholds = self.thresholds()
        if cfg.tune_thresholds and self._aggressiveness > 0.0:
            reasons.append(
                f"thresholds at aggressiveness {self._aggressiveness:.2f}"
                f" (max probed drift {self.max_observed_drift:.4f}"
                f" <= budget {cfg.drift_budget})"
            )

        if profile.degree_cv > 1.0:
            partition = "balanced"
            reasons.append(
                f"degree CV {profile.degree_cv:.2f} > 1: load-balanced"
                " partitions"
            )
        elif profile.changed_frac < 0.5:
            partition = "locality"
            reasons.append(
                f"changed fraction {profile.changed_frac:.2f} < 0.5:"
                " locality partitions"
            )
        else:
            partition = "range"
            reasons.append("high churn, regular degrees: range partitions")

        plan = ExecutionPlan(
            kernel=kernel,
            storage=storage,
            thresholds=thresholds,
            partition_strategy=partition,
            expected_kernel_seconds=kernel_costs,
            expected_storage_cycles=storage_costs,
            reasons=tuple(reasons),
        )
        if self._last_kernel is not None and kernel is not self._last_kernel:
            self.kernel_switches += 1
        self._last_kernel = kernel
        self.records.append(
            PlanRecord(window_index=self._window_index, plan=plan, profile=profile)
        )
        self._window_index += 1
        return plan

    def observe(self, plan: ExecutionPlan, seconds: float) -> None:
        """Fold one executed plan's realized latency into the model."""
        self.cost_model.observe(plan.kernel, float(seconds))
        for rec in reversed(self.records):
            if rec.plan is plan:
                rec.observed_seconds = float(seconds)
                break

    # ------------------------------------------------------------------
    def explain(self) -> str:
        """Multi-window audit: one line per planned window plus the
        latest plan's full rationale."""
        if not self.records:
            return "no windows planned yet"
        lines = []
        for rec in self.records:
            obs = (
                f"{rec.observed_seconds * 1e3:8.2f} ms"
                if rec.observed_seconds is not None
                else "   (unobserved)"
            )
            drift = (
                f"  drift={rec.drift:.4f}" if rec.drift is not None else ""
            )
            lines.append(
                f"window {rec.window_index:3d}: {rec.plan.kernel.value:16s}"
                f" {rec.plan.storage.value:5s}"
                f" theta=({rec.plan.thresholds.theta_s:+.2f},"
                f"{rec.plan.thresholds.theta_e:+.2f})"
                f" {rec.plan.partition_strategy:8s} {obs}{drift}"
            )
        lines.append("")
        lines.append("latest plan:")
        lines.append(self.records[-1].plan.explain())
        lines.append(
            f"kernel switches: {self.kernel_switches};"
            f" probes: {self._probes_done};"
            f" max drift: {self.max_observed_drift:.5f}"
            f" (budget {self.config.drift_budget})"
        )
        return "\n".join(lines)
