"""Runtime sparsity-adaptive execution planning (ROADMAP item 3).

Dynasparse (PAPERS.md) maps GNN computation to dense/sparse kernels *at
runtime* from measured sparsity; AutoGNN argues the storage/layout
decision should be cost-model-driven.  This package is the analogue for
the TaGNN reproduction: per window it

1. measures the live workload into a :class:`WindowProfile`
   (affected-subgraph density, event churn, Condense-Unit delta nnz,
   feature sparsity — all from quantities the engine already computes);
2. consults a :class:`CostModel` — seeded offline by
   :func:`calibrate_cost_model` micro-benchmarks of the PR-6 kernels,
   refined online from exponentially-weighted observed window
   latencies — to pick the storage format (DENSE / CSR / O-CSR / PMA),
   the propagation kernel (batched spmm / dense gemm / delta-condensed)
   and auto-tuned skip thresholds :math:`(\\theta_s, \\theta_e)`;
3. emits an :class:`ExecutionPlan` that
   :class:`~repro.engine.streaming.StreamingInference` executes, with
   every decision and realized cost recorded for audit.

Correctness contract: format and kernel choices are **bit-identical by
construction** (all kernels apply the same additions in the same order;
all formats store the same canonical content — property-tested), and the
only accuracy-affecting knob, :math:`\\theta` auto-tuning, is held inside
a configurable drift budget against the default-threshold pipeline by
:class:`AdaptivePlanner`'s probe/controller loop.
"""

from .calibrate import calibrate_cost_model
from .costmodel import CalibrationTable, CostModel
from .plan import ExecutionPlan, KernelChoice, StorageChoice
from .planner import AdaptiveConfig, AdaptivePlanner, PlanRecord, relative_drift
from .profile import WindowProfile, profile_window

__all__ = [
    "AdaptiveConfig",
    "AdaptivePlanner",
    "CalibrationTable",
    "CostModel",
    "ExecutionPlan",
    "KernelChoice",
    "PlanRecord",
    "StorageChoice",
    "WindowProfile",
    "calibrate_cost_model",
    "profile_window",
    "relative_drift",
]
